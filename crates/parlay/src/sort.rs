//! Parallel sorting: comparison-based merge sort and an LSD radix sort for
//! 64-bit keys (the substrate under Morton sort and the Zd-tree).

use crate::scan::scan_inplace_exclusive;
use crate::GRANULARITY;
use rayon::prelude::*;
use std::cmp::Ordering;

/// Stable parallel merge sort.
///
/// Classic alternating-buffer merge sort: both recursive halves sort in
/// parallel, and the merge itself is parallelized by splitting the larger run
/// at its midpoint and binary-searching the split point in the smaller run.
/// Work `O(n log n)`, depth `O(log^3 n)`.
pub fn merge_sort_by<T, F>(a: &mut [T], cmp: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = a.len();
    if n <= GRANULARITY {
        a.sort_by(&cmp);
        return;
    }
    let mut buf = a.to_vec();
    sort_in_place(a, &mut buf, &cmp);
}

/// Sorts `a` using `buf` as scratch; result lands in `a`.
fn sort_in_place<T, F>(a: &mut [T], buf: &mut [T], cmp: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = a.len();
    if n <= GRANULARITY {
        a.sort_by(cmp);
        return;
    }
    let mid = n / 2;
    let (a1, a2) = a.split_at_mut(mid);
    let (b1, b2) = buf.split_at_mut(mid);
    rayon::join(|| sort_into(a1, b1, cmp), || sort_into(a2, b2, cmp));
    par_merge(b1, b2, a, cmp);
}

/// Sorts the contents of `a`, writing the sorted run into `b`.
fn sort_into<T, F>(a: &mut [T], b: &mut [T], cmp: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = a.len();
    if n <= GRANULARITY {
        a.sort_by(cmp);
        b.copy_from_slice(a);
        return;
    }
    let mid = n / 2;
    let (a1, a2) = a.split_at_mut(mid);
    let (b1, b2) = b.split_at_mut(mid);
    rayon::join(|| sort_in_place(a1, b1, cmp), || sort_in_place(a2, b2, cmp));
    par_merge(a1, a2, b, cmp);
}

/// Merges sorted runs `x` and `y` into `out` (which must have length
/// `x.len() + y.len()`), stably and in parallel.
fn par_merge<T, F>(x: &[T], y: &[T], out: &mut [T], cmp: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    debug_assert_eq!(x.len() + y.len(), out.len());
    if x.len() + y.len() <= GRANULARITY {
        seq_merge(x, y, out, cmp);
        return;
    }
    // Split the longer run at its midpoint; binary-search the matching
    // position in the shorter run. Taking `Less` from y against x's pivot
    // keeps the merge stable (x elements win ties).
    if x.len() >= y.len() {
        let xm = x.len() / 2;
        let ym = y.partition_point(|e| cmp(e, &x[xm]) == Ordering::Less);
        let (o1, o2) = out.split_at_mut(xm + ym);
        rayon::join(
            || par_merge(&x[..xm], &y[..ym], o1, cmp),
            || par_merge(&x[xm..], &y[ym..], o2, cmp),
        );
    } else {
        let ym = y.len() / 2;
        let xm = x.partition_point(|e| cmp(e, &y[ym]) != Ordering::Greater);
        let (o1, o2) = out.split_at_mut(xm + ym);
        rayon::join(
            || par_merge(&x[..xm], &y[..ym], o1, cmp),
            || par_merge(&x[xm..], &y[ym..], o2, cmp),
        );
    }
}

fn seq_merge<T, F>(x: &[T], y: &[T], out: &mut [T], cmp: &F)
where
    T: Copy,
    F: Fn(&T, &T) -> Ordering,
{
    let (mut i, mut j) = (0, 0);
    for o in out.iter_mut() {
        if i < x.len() && (j >= y.len() || cmp(&x[i], &y[j]) != Ordering::Greater) {
            *o = x[i];
            i += 1;
        } else {
            *o = y[j];
            j += 1;
        }
    }
}

const RADIX_BITS: usize = 8;
const BUCKETS: usize = 1 << RADIX_BITS;
/// Radix passes use much larger blocks than [`GRANULARITY`]: the
/// per-pass offset transpose is sequential `O(blocks × 256)`, so blocks
/// must be coarse for it to vanish next to the parallel scatter.
const RADIX_BLOCK: usize = 1 << 16;

/// Stable parallel LSD radix sort of `items` by a `u64` key.
///
/// Eight passes of 8-bit digits; each pass computes per-block histograms in
/// parallel, derives scatter offsets with one scan over the (block × bucket)
/// matrix in bucket-major order, and scatters blocks independently. Passes
/// whose digit is constant across all keys are skipped.
pub fn radix_sort_u64_by_key<T, F>(items: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let n = items.len();
    if n <= RADIX_BLOCK {
        items.sort_by_key(|x| key(x));
        return;
    }
    let mut src: Vec<(u64, T)> = items.par_iter().map(|x| (key(x), *x)).collect();
    let mut dst: Vec<(u64, T)> = Vec::with_capacity(n);
    #[allow(clippy::uninit_vec)]
    unsafe {
        dst.set_len(n);
    }
    let nblocks = n.div_ceil(RADIX_BLOCK);
    for pass in 0..(64 / RADIX_BITS) {
        let shift = pass * RADIX_BITS;
        // Per-block histograms, laid out block-major.
        let hists: Vec<usize> = src
            .par_chunks(RADIX_BLOCK)
            .flat_map_iter(|chunk| {
                let mut h = vec![0usize; BUCKETS];
                for (k, _) in chunk {
                    h[((k >> shift) as usize) & (BUCKETS - 1)] += 1;
                }
                h
            })
            .collect();
        // Skip passes where every key shares the same digit.
        let nonzero_buckets = (0..BUCKETS)
            .filter(|&b| (0..nblocks).any(|blk| hists[blk * BUCKETS + b] != 0))
            .count();
        if nonzero_buckets <= 1 {
            continue;
        }
        // Transpose to bucket-major, scan for global offsets, transpose back.
        let mut offsets = vec![0usize; nblocks * BUCKETS];
        {
            let mut col: Vec<usize> = Vec::with_capacity(nblocks * BUCKETS);
            for b in 0..BUCKETS {
                for blk in 0..nblocks {
                    col.push(hists[blk * BUCKETS + b]);
                }
            }
            scan_inplace_exclusive(&mut col);
            for b in 0..BUCKETS {
                for blk in 0..nblocks {
                    offsets[blk * BUCKETS + b] = col[b * nblocks + blk];
                }
            }
        }
        let dst_ptr = SendPtr(dst.as_mut_ptr());
        src.par_chunks(RADIX_BLOCK)
            .enumerate()
            .for_each(|(blk, chunk)| {
                let p = dst_ptr;
                let mut off = offsets[blk * BUCKETS..(blk + 1) * BUCKETS].to_vec();
                for &(k, v) in chunk {
                    let b = ((k >> shift) as usize) & (BUCKETS - 1);
                    // SAFETY: offsets partition 0..n disjointly across
                    // (block, bucket) pairs by construction of the scan.
                    unsafe { p.0.add(off[b]).write((k, v)) };
                    off[b] += 1;
                }
            });
        std::mem::swap(&mut src, &mut dst);
    }
    items
        .par_iter_mut()
        .zip(src.par_iter())
        .for_each(|(o, &(_, v))| *o = v);
}

/// Sorts `items` in ascending order of an `f64` key (must be finite for all
/// items), using the order-preserving bit transform + radix sort.
pub fn sort_by_key_f64<T, F>(items: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> f64 + Sync,
{
    radix_sort_u64_by_key(items, |x| f64_to_ordered_u64(key(x)));
}

/// Maps `f64` to `u64` such that the `u64` order matches the `f64` order
/// (total order over finite values; -0.0 < +0.0).
#[inline]
pub fn f64_to_ordered_u64(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sort_matches_std() {
        for n in [0usize, 1, 2, 1000, GRANULARITY + 1, 100_000] {
            let mut a: Vec<u64> = (0..n as u64)
                .map(|i| (i * 2_654_435_761) % 10_007)
                .collect();
            let mut want = a.clone();
            want.sort();
            merge_sort_by(&mut a, |x, y| x.cmp(y));
            assert_eq!(a, want, "n={n}");
        }
    }

    #[test]
    fn merge_sort_is_stable() {
        // Sort pairs by first component only; second must keep input order.
        let n = 50_000;
        let mut a: Vec<(u32, u32)> = (0..n).map(|i| ((i * 7) % 10, i)).collect();
        merge_sort_by(&mut a, |x, y| x.0.cmp(&y.0));
        for w in a.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn radix_sort_matches_std() {
        for n in [0usize, 1, 1000, 100_000] {
            let mut a: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            let mut want = a.clone();
            want.sort();
            radix_sort_u64_by_key(&mut a, |&x| x);
            assert_eq!(a, want, "n={n}");
        }
    }

    #[test]
    fn radix_sort_is_stable() {
        let n = 60_000u64;
        let mut a: Vec<(u64, u64)> = (0..n).map(|i| ((i * 13) % 4, i)).collect();
        radix_sort_u64_by_key(&mut a, |x| x.0);
        for w in a.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn f64_order_transform_is_monotone() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            3.5,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(f64_to_ordered_u64(w[0]) <= f64_to_ordered_u64(w[1]));
        }
    }

    #[test]
    fn sort_by_f64_key() {
        let mut a: Vec<f64> = (0..30_000)
            .map(|i| ((i as f64) * 1.7).sin() * 1e6)
            .collect();
        let mut want = a.clone();
        want.sort_by(|x, y| x.partial_cmp(y).unwrap());
        sort_by_key_f64(&mut a, |&x| x);
        assert_eq!(a, want);
    }
}
