//! Deterministic random permutations.
//!
//! Both the randomized incremental convex hull and Welzl's algorithm begin by
//! randomly permuting the input. For reproducible experiments we derive all
//! randomness from an explicit seed (ChaCha8).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::sort::radix_sort_u64_by_key;
use crate::GRANULARITY;
use rayon::prelude::*;

/// Returns a uniformly random permutation of `0..n`, deterministic in `seed`.
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    assert!(n <= u32::MAX as usize, "permutation index overflow");
    let mut perm: Vec<u32> = (0..n as u32).collect();
    shuffle_indices(&mut perm, seed);
    perm
}

/// Shuffles `items` in place, deterministic in `seed`.
///
/// Large inputs use the parallel "sort by random keys" shuffle (the keys are
/// derived per-element from a counter-mode hash, so the result is independent
/// of thread schedule); small inputs use sequential Fisher–Yates.
pub fn shuffle_seeded<T: Copy + Send + Sync>(items: &mut [T], seed: u64) {
    let n = items.len();
    if n <= GRANULARITY {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        fisher_yates(items, &mut rng);
        return;
    }
    // Tag each element with a pseudorandom 64-bit key and sort by it.
    // Collisions are broken by index (stable sort), which biases the result
    // negligibly for 64-bit keys.
    let mut tagged: Vec<(u64, T)> = items
        .par_iter()
        .enumerate()
        .map(|(i, &x)| {
            (
                splitmix64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                x,
            )
        })
        .collect();
    radix_sort_u64_by_key(&mut tagged, |t| t.0);
    items
        .par_iter_mut()
        .zip(tagged.par_iter())
        .for_each(|(o, &(_, v))| *o = v);
}

/// Shuffles `items` in place with a fixed default seed. Convenience for
/// callers that only need *some* deterministic permutation.
pub fn shuffle<T: Copy + Send + Sync>(items: &mut [T]) {
    shuffle_seeded(items, 0x5EED_0FAB);
}

fn shuffle_indices(perm: &mut [u32], seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in (1..perm.len()).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
}

fn fisher_yates<T, R: Rng>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// SplitMix64 finalizer — a fast, high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds `v` into the running hash `h` with the [`splitmix64`] avalanche
/// rounds — the order-sensitive digest step shared by the engine's and the
/// store's workload drivers (equal digests across backends must mean equal
/// answers, so there is exactly one definition of this fold).
#[inline]
pub fn mix64(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_permutation() {
        let n = 10_000;
        let p = random_permutation(n, 42);
        let mut seen = vec![false; n];
        for &i in &p {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(random_permutation(1000, 7), random_permutation(1000, 7));
        assert_ne!(random_permutation(1000, 7), random_permutation(1000, 8));
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut a: Vec<u32> = (0..50_000).collect();
        shuffle_seeded(&mut a, 3);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50_000).collect::<Vec<u32>>());
        // And actually permutes something.
        assert!(a.iter().enumerate().any(|(i, &x)| i as u32 != x));
    }

    #[test]
    fn large_shuffle_deterministic() {
        let mut a: Vec<u32> = (0..20_000).collect();
        let mut b = a.clone();
        shuffle_seeded(&mut a, 99);
        shuffle_seeded(&mut b, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_looks_uniform_chi2_smoke() {
        // First element should land roughly uniformly across 10 deciles over
        // repeated seeds. Loose bound; just a sanity check, not a statistics
        // suite.
        let n = 1000u32;
        let mut counts = [0usize; 10];
        for seed in 0..500 {
            let mut a: Vec<u32> = (0..n).collect();
            shuffle_seeded(&mut a, seed);
            counts[(a[0] * 10 / n) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 20), "{counts:?}");
    }
}
