//! Parallel histogram and group-by-key utilities.

use crate::scan::scan_inplace_exclusive;
use crate::GRANULARITY;
use rayon::prelude::*;

/// Counts occurrences of each key in `0..num_keys`.
pub fn histogram(keys: &[usize], num_keys: usize) -> Vec<usize> {
    if keys.len() <= GRANULARITY {
        let mut h = vec![0usize; num_keys];
        for &k in keys {
            h[k] += 1;
        }
        return h;
    }
    keys.par_chunks(GRANULARITY)
        .map(|chunk| {
            let mut h = vec![0usize; num_keys];
            for &k in chunk {
                h[k] += 1;
            }
            h
        })
        .reduce(
            || vec![0usize; num_keys],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

/// Stable group-by: returns `(grouped_items, group_offsets)` where group
/// `k` occupies `grouped[offsets[k]..offsets[k+1]]`, preserving input
/// order within a group.
pub fn group_by_key<T: Copy + Send + Sync>(
    items: &[T],
    num_keys: usize,
    key: impl Fn(&T) -> usize + Sync,
) -> (Vec<T>, Vec<usize>) {
    let n = items.len();
    if n <= GRANULARITY {
        let mut counts = vec![0usize; num_keys + 1];
        for x in items {
            counts[key(x) + 1] += 1;
        }
        for k in 0..num_keys {
            counts[k + 1] += counts[k];
        }
        let offsets = counts.clone();
        let mut out: Vec<T> = Vec::with_capacity(n);
        #[allow(clippy::uninit_vec)]
        unsafe {
            out.set_len(n);
        }
        let mut cursor = offsets.clone();
        for x in items {
            let k = key(x);
            out[cursor[k]] = *x;
            cursor[k] += 1;
        }
        return (out, offsets);
    }
    let nblocks = n.div_ceil(GRANULARITY);
    let hists: Vec<usize> = items
        .par_chunks(GRANULARITY)
        .flat_map_iter(|chunk| {
            let mut h = vec![0usize; num_keys];
            for x in chunk {
                h[key(x)] += 1;
            }
            h
        })
        .collect();
    let mut offsets_blocks = vec![0usize; nblocks * num_keys];
    let mut group_offsets = vec![0usize; num_keys + 1];
    {
        let mut col: Vec<usize> = Vec::with_capacity(nblocks * num_keys);
        for k in 0..num_keys {
            for blk in 0..nblocks {
                col.push(hists[blk * num_keys + k]);
            }
        }
        scan_inplace_exclusive(&mut col);
        for k in 0..num_keys {
            group_offsets[k] = col[k * nblocks];
            for blk in 0..nblocks {
                offsets_blocks[blk * num_keys + k] = col[k * nblocks + blk];
            }
        }
        group_offsets[num_keys] = n;
    }
    let mut out: Vec<T> = Vec::with_capacity(n);
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n);
    }
    let out_ptr = SendPtr(out.as_mut_ptr());
    items
        .par_chunks(GRANULARITY)
        .enumerate()
        .for_each(|(blk, chunk)| {
            let p = out_ptr;
            let mut cur = offsets_blocks[blk * num_keys..(blk + 1) * num_keys].to_vec();
            for &x in chunk {
                let k = key(&x);
                // SAFETY: disjoint (block, key) destination ranges.
                unsafe { p.0.add(cur[k]).write(x) };
                cur[k] += 1;
            }
        });
    (out, group_offsets)
}

struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_matches_reference() {
        let keys: Vec<usize> = (0..100_000).map(|i| (i * 31) % 17).collect();
        let got = histogram(&keys, 17);
        let mut want = vec![0usize; 17];
        for &k in &keys {
            want[k] += 1;
        }
        assert_eq!(got, want);
        assert_eq!(got.iter().sum::<usize>(), keys.len());
    }

    #[test]
    fn histogram_empty_and_small() {
        assert_eq!(histogram(&[], 4), vec![0; 4]);
        assert_eq!(histogram(&[2, 2, 0], 3), vec![1, 0, 2]);
    }

    #[test]
    fn group_by_is_stable_partition() {
        let items: Vec<(usize, u32)> = (0..80_000).map(|i| ((i * 7) % 5, i as u32)).collect();
        let (grouped, offsets) = group_by_key(&items, 5, |x| x.0);
        assert_eq!(offsets.len(), 6);
        assert_eq!(offsets[5], items.len());
        for k in 0..5 {
            let grp = &grouped[offsets[k]..offsets[k + 1]];
            assert!(grp.iter().all(|x| x.0 == k));
            // Stability: second components increasing within the group.
            assert!(grp.windows(2).all(|w| w[0].1 < w[1].1));
        }
    }

    #[test]
    fn group_by_with_empty_groups() {
        let items: Vec<usize> = vec![3; 10_000];
        let (grouped, offsets) = group_by_key(&items, 6, |&x| x);
        assert_eq!(grouped.len(), 10_000);
        assert_eq!(offsets[3], 0);
        assert_eq!(offsets[4], 10_000);
        assert_eq!(offsets[0], 0);
        assert_eq!(offsets[6], 10_000);
    }
}
