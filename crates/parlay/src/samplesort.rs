//! Parallel sample sort — ParlayLib's workhorse comparison sort.
//!
//! Oversampled splitter selection, parallel bucket classification via a
//! per-block count/scan/scatter (the same machinery as the radix passes),
//! then parallel recursion per bucket. Compared with the merge sort in
//! [`crate::sort`], sample sort trades the merge's perfect balance for
//! bucket-local cache behavior; the `sort_ablation` bench compares them.

use crate::scan::scan_inplace_exclusive;
use crate::GRANULARITY;
use rayon::prelude::*;
use std::cmp::Ordering;

/// Number of buckets per level.
const BUCKETS: usize = 64;
/// Oversampling factor for splitter selection.
const OVERSAMPLE: usize = 8;

/// Parallel (unstable) sample sort.
pub fn sample_sort_by<T, F>(a: &mut [T], cmp: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    sort_rec(a, &cmp, 0);
}

fn sort_rec<T, F>(a: &mut [T], cmp: &F, depth: usize)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = a.len();
    if n <= GRANULARITY || depth > 8 {
        a.sort_unstable_by(|x, y| cmp(x, y));
        return;
    }
    // Choose BUCKETS-1 splitters from an oversampled, deterministic sample.
    let s = BUCKETS * OVERSAMPLE;
    let mut sample: Vec<T> = (0..s).map(|i| a[(i * (n - 1)) / (s - 1)]).collect();
    sample.sort_unstable_by(|x, y| cmp(x, y));
    let splitters: Vec<T> = (1..BUCKETS).map(|b| sample[b * OVERSAMPLE]).collect();
    // Classify each element (branchless-ish binary search over splitters).
    let bucket_of =
        |x: &T| -> usize { splitters.partition_point(|sp| cmp(sp, x) != Ordering::Greater) };
    let nblocks = n.div_ceil(GRANULARITY);
    let hists: Vec<usize> = a
        .par_chunks(GRANULARITY)
        .flat_map_iter(|chunk| {
            let mut h = vec![0usize; BUCKETS];
            for x in chunk {
                h[bucket_of(x)] += 1;
            }
            h
        })
        .collect();
    // Bucket-major scan for scatter offsets.
    let mut offsets = vec![0usize; nblocks * BUCKETS];
    let mut bucket_starts = vec![0usize; BUCKETS + 1];
    {
        let mut col: Vec<usize> = Vec::with_capacity(nblocks * BUCKETS);
        for b in 0..BUCKETS {
            for blk in 0..nblocks {
                col.push(hists[blk * BUCKETS + b]);
            }
        }
        scan_inplace_exclusive(&mut col);
        for b in 0..BUCKETS {
            bucket_starts[b] = col[b * nblocks];
            for blk in 0..nblocks {
                offsets[blk * BUCKETS + b] = col[b * nblocks + blk];
            }
        }
        bucket_starts[BUCKETS] = n;
    }
    // Scatter into a buffer.
    let mut buf: Vec<T> = Vec::with_capacity(n);
    #[allow(clippy::uninit_vec)]
    unsafe {
        buf.set_len(n);
    }
    {
        let buf_ptr = SendPtr(buf.as_mut_ptr());
        a.par_chunks(GRANULARITY)
            .enumerate()
            .for_each(|(blk, chunk)| {
                let p = buf_ptr;
                let mut off = offsets[blk * BUCKETS..(blk + 1) * BUCKETS].to_vec();
                for &x in chunk {
                    let b = bucket_of(&x);
                    // SAFETY: (block, bucket) offset ranges partition 0..n.
                    unsafe { p.0.add(off[b]).write(x) };
                    off[b] += 1;
                }
            });
    }
    a.copy_from_slice(&buf);
    drop(buf);
    // Recurse per bucket in parallel over disjoint subslices.
    let mut rest: &mut [T] = a;
    let mut consumed = 0usize;
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(BUCKETS);
    for b in 0..BUCKETS {
        let end = bucket_starts[b + 1];
        let (head, tail) = rest.split_at_mut(end - consumed);
        slices.push(head);
        rest = tail;
        consumed = end;
    }
    slices
        .into_par_iter()
        .for_each(|s| sort_rec(s, cmp, depth + 1));
}

struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_std_sort() {
        for n in [0usize, 1, 100, GRANULARITY + 1, 200_000] {
            let mut a: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 100_003)
                .collect();
            let mut want = a.clone();
            want.sort();
            sample_sort_by(&mut a, |x, y| x.cmp(y));
            assert_eq!(a, want, "n={n}");
        }
    }

    #[test]
    fn many_duplicates() {
        let mut a: Vec<u32> = (0..150_000).map(|i| i % 7).collect();
        let mut want = a.clone();
        want.sort();
        sample_sort_by(&mut a, |x, y| x.cmp(y));
        assert_eq!(a, want);
    }

    #[test]
    fn all_equal_hits_depth_guard() {
        let mut a = vec![5u8; 300_000];
        sample_sort_by(&mut a, |x, y| x.cmp(y));
        assert!(a.iter().all(|&x| x == 5));
    }

    #[test]
    fn reverse_sorted_floats() {
        let mut a: Vec<f64> = (0..120_000).rev().map(|i| i as f64 * 0.5).collect();
        sample_sort_by(&mut a, |x, y| x.partial_cmp(y).unwrap());
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn deterministic_across_pool_sizes() {
        let a: Vec<u64> = (0..80_000u64)
            .map(|i| i.wrapping_mul(2_654_435_761))
            .collect();
        let mut x = a.clone();
        let mut y = a.clone();
        crate::pool::with_threads(1, || sample_sort_by(&mut x, |p, q| p.cmp(q)));
        crate::pool::with_threads(4, || sample_sort_by(&mut y, |p, q| p.cmp(q)));
        assert_eq!(x, y);
    }
}
