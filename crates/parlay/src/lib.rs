//! # pargeo-parlay — parallel primitives substrate
//!
//! This crate plays the role that [ParlayLib] plays for the original ParGeo:
//! it provides the shared-memory parallel building blocks every geometry
//! module is written against.
//!
//! * [`scan`] — parallel prefix sums (exclusive/inclusive) over arbitrary
//!   associative operators.
//! * [`mod@pack`] — parallel filtering/packing driven by flag vectors or
//!   predicates (the `ParallelPack` of the paper's Figure 5, line 17).
//! * [`mod@reduce`] — parallel reductions, including the parallel
//!   maximum-finding routine used by quickhull and the Welzl pivot heuristic.
//! * [`atomics`] — the priority write (`WriteMin`/`WriteMax`) of
//!   Shun et al. \[49\], the core of the reservation technique.
//! * [`sort`] — a parallel merge sort and an LSD radix sort for 64-bit keys
//!   (the Morton-sort substrate).
//! * [`mod@shuffle`] — deterministic random permutations, sequential
//!   (Fisher–Yates) and parallel (sort by random keys).
//! * [`select`] — parallel quickselect (`nth_element`) used for
//!   object-median kd-tree splits.
//! * [`pool`] — helpers to run any closure on a dedicated pool with a fixed
//!   number of threads (the `T1` / `T36h` sweeps of the paper's evaluation).
//!
//! Scheduling itself (fork-join, work stealing) is delegated to `rayon`,
//! which maps one-to-one onto ParlayLib's `par_do`/`parallel_for` model; see
//! DESIGN.md §5. Everything algorithmic above raw fork-join lives here.
//!
//! [ParlayLib]: https://github.com/cmuparlay/parlaylib

pub mod atomics;
pub mod histogram;
pub mod pack;
pub mod pool;
pub mod reduce;
pub mod samplesort;
pub mod scan;
pub mod select;
pub mod shuffle;
pub mod sort;

pub use atomics::{write_max_usize, write_min_usize, AtomicMinIndex};
pub use histogram::{group_by_key, histogram};
pub use pack::{filter, pack, pack_index, split_two};
pub use pool::{num_threads, with_threads};
pub use reduce::{max_index_by, min_index_by, reduce, reduce_map};
pub use samplesort::sample_sort_by;
pub use scan::{scan_exclusive, scan_inclusive, scan_inplace_exclusive};
pub use select::select_nth_unstable_by;
pub use shuffle::{mix64, random_permutation, shuffle, shuffle_seeded};
pub use sort::{merge_sort_by, radix_sort_u64_by_key, sort_by_key_f64};

/// Grain size below which parallel primitives fall back to their sequential
/// counterparts. Chosen so that per-task scheduling overhead stays well under
/// 1% of useful work for the arithmetic-light kernels in this workspace.
pub const GRANULARITY: usize = 2048;

/// Runs `f(i)` for every `i` in `0..n` in parallel.
///
/// A convenience wrapper over rayon's indexed parallel iterator that applies
/// the crate-wide [`GRANULARITY`] so tiny loops do not pay fork-join overhead.
pub fn parallel_for<F: Fn(usize) + Send + Sync>(n: usize, f: F) {
    use rayon::prelude::*;
    if n < GRANULARITY {
        for i in 0..n {
            f(i);
        }
    } else {
        (0..n).into_par_iter().for_each(f);
    }
}

/// Runs `a` and `b` potentially in parallel (fork-join "par_do").
pub fn par_do<RA: Send, RB: Send>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    rayon::join(a, b)
}

/// Maps `f` over a query batch, in order: sequentially below `grain`,
/// data-parallel above it. The one batch-dispatch idiom every batched
/// query surface (`knn_batch`, `range_box_batch`, `answer_batch`, the
/// oracle) shares, so per-backend copies cannot drift.
pub fn map_batch<T: Sync, R: Send>(
    items: &[T],
    grain: usize,
    f: impl Fn(&T) -> R + Send + Sync,
) -> Vec<R> {
    use rayon::prelude::*;
    if items.len() < grain {
        items.iter().map(f).collect()
    } else {
        items.par_iter().map(f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_visits_every_index_once() {
        let n = 10_000;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_small_input_runs_sequentially() {
        let n = 17;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_do_returns_both_results() {
        let (a, b) = par_do(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
