//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Implements the small trait surface this workspace uses — `RngCore`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range}` over the types
//! that appear in the code — with the same uniformity contracts (rejection
//! sampling for integer ranges, 53-bit mantissa fill for `f64`).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full range for integers).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling from a u64 span of width `span` (0 means full range),
/// by rejection to avoid modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64; // 0 on full u64
                let off = uniform_u64(rng, span);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing convenience trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — the statistically solid default generator used when
    /// callers just ask for "a" deterministic PRNG.
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn gen_range_is_in_bounds_and_hits_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(0usize..=9);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
