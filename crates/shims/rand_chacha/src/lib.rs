//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! The block function is the actual ChaCha permutation at 8 rounds
//! (Bernstein 2008), so keystream quality matches the real crate; the
//! stream layout differs from upstream `rand_chacha` (this workspace only
//! relies on *determinism in the seed*, not cross-crate bit compatibility).

use rand::{RngCore, SeedableRng};

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, nonce: u64, rounds: usize) -> [u32; 16] {
    let mut s: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        nonce as u32,
        (nonce >> 32) as u32,
    ];
    let initial = s;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    for (out, init) in s.iter_mut().zip(initial.iter()) {
        *out = out.wrapping_add(*init);
    }
    s
}

/// ChaCha with 8 rounds, buffered one 64-byte block at a time.
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means "refill".
    idx: usize,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64, the
        // same scheme rand uses for small seeds.
        let mut z = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            pair[0] = x as u32;
            if pair.len() > 1 {
                pair[1] = (x >> 32) as u32;
            }
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.idx >= 15 {
            self.buf = chacha_block(&self.key, self.counter, 0, 8);
            self.counter = self.counter.wrapping_add(1);
            self.idx = 0;
        }
        let lo = self.buf[self.idx] as u64;
        let hi = self.buf[self.idx + 1] as u64;
        self.idx += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn keystream_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
        // Bit balance across the word.
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        let frac = ones as f64 / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.02, "frac={frac}");
    }
}
