//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Source-compatible with the subset the `pargeo-bench` criterion benches
//! use: `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size` / `warm_up_time` / `measurement_time`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and `black_box`. Statistics are
//! intentionally simple — one warmup iteration, then `sample_size` timed
//! iterations reported as min/mean — because the paper-reproduction
//! numbers come from `crates/bench/src/bin/*`, not from this harness.
//!
//! `CRITERION_SAMPLE_SIZE` caps the per-benchmark sample count from the
//! environment (handy in CI smoke runs).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each registered bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: String::new(),
            sample_size: 10,
        };
        g.bench_function(id, f);
        self
    }
}

/// A named benchmark id (`function/parameter`).
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for source compatibility; this harness is iteration-count
    /// driven, not time driven.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for source compatibility; see [`Self::warm_up_time`].
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(self.sample_size)
            .max(1);
        let mut b = Bencher {
            samples,
            times: Vec::with_capacity(samples),
        };
        f(&mut b);
        let (min, mean) = b.stats();
        let prefix = if self.name.is_empty() {
            String::new()
        } else {
            format!("{}/", self.name)
        };
        println!(
            "  {prefix}{id}: min {:.3} ms, mean {:.3} ms ({samples} samples)",
            min * 1e3,
            mean * 1e3
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Timer handed to the closure; `iter` runs the workload.
pub struct Bencher {
    samples: usize,
    times: Vec<f64>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let _ = black_box(f()); // warmup / lazy-allocation pass
        for _ in 0..self.samples {
            let t = Instant::now();
            let _ = black_box(f());
            self.times.push(t.elapsed().as_secs_f64());
        }
    }

    fn stats(&self) -> (f64, f64) {
        if self.times.is_empty() {
            return (0.0, 0.0);
        }
        let min = self.times.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = self.times.iter().sum::<f64>() / self.times.len() as f64;
        (min, mean)
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 500), &500u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(group_runs, sample_bench);

    #[test]
    fn harness_runs_and_records() {
        group_runs();
    }
}
