//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Length specifications accepted by [`vec()`].
pub trait SizeRange {
    /// Inclusive bounds `(min, max)`.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end())
    }
}

pub struct VecStrategy<S> {
    elem: S,
    min: usize,
    max: usize,
}

/// Generates `Vec`s whose length is uniform over `size` and whose elements
/// come from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { elem, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.max - self.min) as u64 + 1;
        let len = self.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
