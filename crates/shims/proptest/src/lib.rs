//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset this workspace's property suites use: composable
//! generate-only strategies (ranges, tuples, `prop_map`, `prop_oneof!`,
//! `prop::collection::vec`), the `proptest!` macro, `prop_assert*!` /
//! `prop_assume!`, and `ProptestConfig::with_cases`. No shrinking: a
//! failing case panics with the full generated inputs instead, which the
//! deterministic per-test RNG makes reproducible.
//!
//! Case counts honor the `PROPTEST_CASES` environment variable (it
//! overrides each suite's `ProptestConfig`), matching real proptest, so CI
//! can cap runtimes globally.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of real proptest's `prelude::prop` facade module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs a block of property tests. Supported grammar (the one real
/// proptest documents and this workspace uses):
///
/// ```
/// use proptest::prelude::*;
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     fn my_property(x in 0i32..10, v in prop::collection::vec(0f64..1.0, 1..50)) {
///         prop_assert!((0..10).contains(&x));
///         prop_assert!(!v.is_empty());
///     }
/// }
/// my_property();
/// ```
///
/// (In real test modules the function list carries `#[test]` attributes,
/// which the macro re-emits.)
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let cases = $crate::test_runner::resolve_cases(($cfg).cases);
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted = 0usize;
            let mut rejected = 0usize;
            while accepted < cases {
                $(let $arg = ($strat).generate(&mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::thread::Result<
                    ::std::result::Result<(), $crate::test_runner::TestCaseError>,
                > = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                    $body
                    ::std::result::Result::Ok(())
                }));
                match outcome {
                    Ok(Ok(())) => accepted += 1,
                    Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {
                        rejected += 1;
                        if rejected > 64 * cases + 1024 {
                            panic!(
                                "proptest '{}': too many prop_assume! rejections \
                                 ({rejected} rejected, {accepted} accepted)",
                                stringify!($name)
                            );
                        }
                    }
                    Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                        panic!(
                            "proptest '{}' failed after {accepted} passing cases: {msg}\n\
                             minimal reproduction inputs: {inputs}",
                            stringify!($name)
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest '{}' panicked after {accepted} passing cases;\n\
                             inputs: {inputs}",
                            stringify!($name)
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Fails the current test case with a message (formatted like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current test case (does not count toward the case budget)
/// unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper_outside_macro(v: &[i32]) -> Result<(), TestCaseError> {
        prop_assert!(!v.is_empty(), "empty input");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -50i64..50, y in 0f64..1.0, n in 1usize..10) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn tuples_and_maps(p in (0i32..8, 0i32..8).prop_map(|(a, b)| (a * 2, b * 2))) {
            prop_assert_eq!(p.0 % 2, 0);
            prop_assert_eq!(p.1 % 2, 0);
        }

        #[test]
        fn vec_and_oneof(
            v in prop::collection::vec(prop_oneof![0i32..10, 100i32..110], 3..20)
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 20);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x) || (100..110).contains(&x)));
            helper_outside_macro(&v)?;
        }

        #[test]
        fn assume_rejects_without_failing(a in 0i32..100) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "minimal reproduction inputs")]
    fn failures_report_inputs() {
        proptest! {
            fn always_fails(x in 0i32..10) {
                prop_assert!(x > 100, "x too small");
            }
        }
        always_fails();
    }
}
