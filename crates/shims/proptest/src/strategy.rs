//! Generate-only strategies: each strategy maps the deterministic test RNG
//! to a value. No shrinking — see the crate docs.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategies behind a reference still generate.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Object-safe strategy for type erasure.
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V: Debug> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// A fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<V>(pub V);

impl<V: Clone + Debug> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);
