//! The case-execution machinery behind the `proptest!` macro.

/// Per-suite configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// Effective case count: `PROPTEST_CASES` overrides the suite's config,
/// exactly like real proptest, so CI can cap the whole tier globally.
pub fn resolve_cases(config_cases: u32) -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(config_cases as usize)
        .max(1)
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` precondition failed — try another input.
    Reject(String),
    /// `prop_assert*!` failed — the property is falsified.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-test RNG (SplitMix64 seeded from the test path), so a
/// reported failure reproduces on the next run without a persistence file.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
