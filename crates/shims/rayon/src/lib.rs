//! Offline stand-in for [rayon](https://github.com/rayon-rs/rayon).
//!
//! This workspace vendors a minimal, dependency-free re-implementation of
//! the rayon API surface it actually uses, so the build works with no
//! registry access. The semantics mirror rayon where it matters:
//!
//! * [`join`] really runs both closures concurrently (scoped `std::thread`)
//!   as long as the current pool's thread budget allows, and degrades to
//!   sequential execution when it does not — so `ThreadPool` sizes behave
//!   like rayon's (`num_threads(1)` is genuinely sequential `T1`).
//! * The parallel iterators in [`prelude`] are *indexed* producers that
//!   split recursively and execute leaves sequentially, driving the splits
//!   through [`join`]. Ordering guarantees match rayon's indexed iterators:
//!   `collect` preserves input order.
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] scope a thread budget
//!   (propagated into spawned workers), which `current_num_threads` reports.
//!
//! The scheduler is a budgeted fork-join, not a work-stealing deque; see
//! DESIGN.md §7 for the substitution rationale and the upgrade path to real
//! rayon when a registry is available.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

pub mod iter;
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// A pool is just a thread budget shared by everything running "inside" it.
struct PoolState {
    /// Maximum number of concurrently running worker threads (including the
    /// thread that called [`ThreadPool::install`]).
    limit: usize,
    /// Number of *extra* threads currently spawned by [`join`].
    active: AtomicUsize,
}

impl PoolState {
    fn new(limit: usize) -> Arc<Self> {
        Arc::new(PoolState {
            limit: limit.max(1),
            active: AtomicUsize::new(0),
        })
    }

    /// Try to reserve a slot for one more concurrent worker.
    fn try_acquire(&self) -> bool {
        self.active
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |a| {
                if a + 1 < self.limit {
                    Some(a + 1)
                } else {
                    None
                }
            })
            .is_ok()
    }

    fn release(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The process-wide pool every thread falls back to. Initialized lazily to
/// the machine parallelism, or explicitly (once, before any parallel work)
/// by [`ThreadPoolBuilder::build_global`].
static DEFAULT: OnceLock<Arc<PoolState>> = OnceLock::new();

fn default_state() -> Arc<PoolState> {
    DEFAULT
        .get_or_init(|| {
            PoolState::new(
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1),
            )
        })
        .clone()
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Arc<PoolState>>> =
        const { std::cell::RefCell::new(None) };
}

fn current_state() -> Arc<PoolState> {
    CURRENT
        .with(|c| c.borrow().clone())
        .unwrap_or_else(default_state)
}

/// Runs `f` with `state` as the thread's current pool, restoring on exit.
fn with_state<R>(state: Arc<PoolState>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<PoolState>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(state));
    let _restore = Restore(prev);
    f()
}

/// Number of threads in the current pool (the machine default when no
/// explicit pool is installed).
pub fn current_num_threads() -> usize {
    current_state().limit
}

/// Runs `a` and `b`, in parallel when the current pool has a spare thread,
/// sequentially otherwise. Returns both results; propagates panics.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let state = current_state();
    if state.try_acquire() {
        struct Release<'a>(&'a PoolState);
        impl Drop for Release<'_> {
            fn drop(&mut self) {
                self.0.release();
            }
        }
        let _release = Release(&state);
        let worker_state = state.clone();
        std::thread::scope(|s| {
            let hb = s.spawn(move || with_state(worker_state, b));
            let ra = a();
            let rb = match hb.join() {
                Ok(rb) => rb,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (ra, rb)
        })
    } else {
        let ra = a();
        let rb = b();
        (ra, rb)
    }
}

/// Error from [`ThreadPoolBuilder::build`]. This shim cannot actually fail
/// to build a pool, but the type keeps call sites source-compatible.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] with a fixed thread budget.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (`0` means the machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let limit = self.num_threads.unwrap_or_else(|| default_state().limit);
        Ok(ThreadPool {
            state: PoolState::new(limit),
        })
    }

    /// Installs this budget as the process-wide default pool, visible from
    /// every thread. Matches rayon's contract of failing if the global pool
    /// was already initialized (explicitly, or implicitly by parallel work
    /// that already ran).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        // Compute the limit without default_state(), which would itself
        // initialize DEFAULT and make this set() always fail.
        let limit = self.num_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        });
        DEFAULT
            .set(PoolState::new(limit))
            .map_err(|_| ThreadPoolBuildError(()))
    }
}

/// A scoped thread budget. All parallel work executed under
/// [`ThreadPool::install`] (including from threads [`join`] spawns) is
/// limited to this pool's thread count.
pub struct ThreadPool {
    state: Arc<PoolState>,
}

impl ThreadPool {
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        with_state(self.state.clone(), op)
    }

    pub fn current_num_threads(&self) -> usize {
        self.state.limit
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "x".repeat(3));
        assert_eq!(a, 4);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn join_actually_runs_concurrently_with_budget() {
        use std::sync::mpsc;
        // Rendezvous: both sides must be alive at once to finish.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            let (txa, rxa) = mpsc::channel();
            let (txb, rxb) = mpsc::channel();
            join(
                move || {
                    txa.send(()).unwrap();
                    rxb.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
                },
                move || {
                    txb.send(()).unwrap();
                    rxa.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
                },
            );
        });
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        // Nested pools restore the outer budget.
        let outer = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let (o, i) = outer.install(|| {
            let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            let i = inner.install(current_num_threads);
            (current_num_threads(), i)
        });
        assert_eq!((o, i), (5, 2));
    }

    #[test]
    fn single_thread_pool_never_spawns() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            let main = std::thread::current().id();
            let (ta, tb) = join(
                || std::thread::current().id(),
                || std::thread::current().id(),
            );
            assert_eq!(ta, main);
            assert_eq!(tb, main);
        });
    }

    #[test]
    fn budget_propagates_into_spawned_workers() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let (_, inner) = join(|| (), current_num_threads);
            assert_eq!(inner, 4);
        });
    }

    #[test]
    fn par_iter_collect_preserves_order() {
        let v: Vec<u64> = (0..100_000u64).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out.len(), v.len());
        assert!(out.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn join_propagates_panics() {
        let r = std::panic::catch_unwind(|| {
            join(|| (), || panic!("boom"));
        });
        assert!(r.is_err());
    }
}
