//! Offline stand-in for [rayon](https://github.com/rayon-rs/rayon).
//!
//! This workspace vendors a re-implementation of the rayon API surface it
//! actually uses, so the build works with no registry access. Since PR 9
//! it is a thin facade over [`pargeo_sched`], a real persistent
//! work-stealing pool (per-worker Chase–Lev deques, a global injector,
//! backoff parking), replacing the original budgeted `std::thread`
//! fork-join. The semantics mirror rayon where it matters:
//!
//! * [`join`] pushes its second closure on the calling worker's deque and
//!   runs the first inline; an idle worker may steal the second, which is
//!   the only source of parallelism. `num_threads(1)` is genuinely
//!   sequential `T1`. Panics propagate after both sides finish.
//! * [`ThreadPool::install`] *migrates* the closure onto a pool worker
//!   (rayon's model), so every join/scope/iterator split underneath it is
//!   a deque push, never an OS thread spawn.
//! * The parallel iterators in [`prelude`] are indexed producers driven
//!   by lazy binary splitting ([`join_context`] + steal-triggered
//!   re-splits) with a calibrated sequential threshold — see
//!   [`iter`] — matching rayon's producer/splitter design. `collect`
//!   preserves input order.
//! * [`scope`] / [`spawn`] run on the same pool and propagate task panics
//!   to the scope owner.

pub mod iter;
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// Context passed to [`join_context`] closures; `migrated()` reports
/// whether the closure was stolen by another worker.
pub use pargeo_sched::JoinContext as FnContext;
/// A fork-join scope; see [`scope`].
pub use pargeo_sched::Scope;

/// Number of threads in the current pool (the global pool's size when no
/// explicit pool is installed).
pub fn current_num_threads() -> usize {
    pargeo_sched::current_num_threads()
}

/// Runs `a` and `b`, potentially in parallel on the current pool, and
/// returns both results; propagates panics after both sides finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pargeo_sched::join(a, b)
}

/// [`join`] whose closures receive an [`FnContext`] reporting whether
/// they migrated to another worker (i.e. were stolen).
pub fn join_context<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce(FnContext) -> RA + Send,
    B: FnOnce(FnContext) -> RB + Send,
    RA: Send,
    RB: Send,
{
    pargeo_sched::join_context(a, b)
}

/// Creates a fork-join scope whose spawned tasks may borrow from the
/// enclosing frame; blocks until all of them completed.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    pargeo_sched::scope(op)
}

/// Fire-and-forget task on the current pool.
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    pargeo_sched::spawn(f)
}

/// Error from [`ThreadPoolBuilder::build`] / `build_global`.
#[derive(Debug)]
pub struct ThreadPoolBuildError(pargeo_sched::BuildError);

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error: {}", self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] with a fixed worker count.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (`0` means the machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        pargeo_sched::PoolBuilder::new()
            .num_threads(self.num_threads.unwrap_or(0))
            .build()
            .map(|pool| ThreadPool { pool })
            .map_err(ThreadPoolBuildError)
    }

    /// Sizes the process-wide default pool. Matches rayon's contract of
    /// failing if the global pool was already initialized (explicitly, or
    /// implicitly by parallel work that already ran).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        pargeo_sched::configure_global(self.num_threads.unwrap_or(0)).map_err(ThreadPoolBuildError)
    }
}

/// A dedicated work-stealing pool. All parallel work executed under
/// [`ThreadPool::install`] runs on this pool's persistent workers.
pub struct ThreadPool {
    pool: pargeo_sched::Pool,
}

impl ThreadPool {
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        self.pool.install(op)
    }

    pub fn current_num_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// The underlying scheduler pool — not part of rayon's API; exposed
    /// so the workspace can attach metrics registries and read
    /// [`pargeo_sched::SchedStats`].
    pub fn sched(&self) -> &pargeo_sched::Pool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "x".repeat(3));
        assert_eq!(a, 4);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn join_actually_runs_concurrently_with_budget() {
        use std::sync::mpsc;
        // Rendezvous: both sides must be alive at once to finish.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            let (txa, rxa) = mpsc::channel();
            let (txb, rxb) = mpsc::channel();
            join(
                move || {
                    txa.send(()).unwrap();
                    rxb.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
                },
                move || {
                    txb.send(()).unwrap();
                    rxa.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
                },
            );
        });
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        // Nested pools: the inner install migrates to the inner pool and
        // back.
        let outer = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let (o, i) = outer.install(|| {
            let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            let i = inner.install(current_num_threads);
            (current_num_threads(), i)
        });
        assert_eq!((o, i), (5, 2));
    }

    #[test]
    fn single_thread_pool_never_spawns() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            let main = std::thread::current().id();
            let (ta, tb) = join(
                || std::thread::current().id(),
                || std::thread::current().id(),
            );
            assert_eq!(ta, main);
            assert_eq!(tb, main);
        });
    }

    #[test]
    fn budget_propagates_into_spawned_workers() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let (_, inner) = join(|| (), current_num_threads);
            assert_eq!(inner, 4);
        });
    }

    #[test]
    fn par_iter_collect_preserves_order() {
        let v: Vec<u64> = (0..100_000u64).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out.len(), v.len());
        assert!(out.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn join_propagates_panics() {
        let r = std::panic::catch_unwind(|| {
            join(|| (), || panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn install_reuses_persistent_workers() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let first = pool.install(|| std::thread::current().id());
        let before = pool.sched().stats().tasks_total;
        for _ in 0..10 {
            pool.install(|| ());
        }
        let after = pool.sched().stats().tasks_total;
        assert!(after >= before + 10, "installs must run as pool tasks");
        // Same worker set serves every install (no thread churn): the ids
        // seen later all come from the pool's two persistent workers.
        let second = pool.install(|| std::thread::current().id());
        let third = pool.install(|| std::thread::current().id());
        assert!([second, third].contains(&first) || second == third);
    }

    #[test]
    fn scope_spawn_borrows_from_stack() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let mut results = vec![0usize; 8];
        pool.install(|| {
            let chunks: Vec<&mut usize> = results.iter_mut().collect();
            scope(|s| {
                for (i, slot) in chunks.into_iter().enumerate() {
                    s.spawn(move |_| *slot = i + 1);
                }
            });
        });
        assert_eq!(results, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
