//! Indexed parallel iterators over splittable producers.
//!
//! A [`Producer`] is a splittable unit of work: it can be cut in two at a
//! unit boundary, and a leaf executes sequentially via internal iteration
//! ([`Producer::each`]). Terminal operations drive the producer through
//! *lazy binary splitting* (`LengthSplitter`): an eager phase cuts
//! `current_num_threads()` initial pieces, and past that a subtree splits
//! further only when it was actually stolen (detected via
//! [`crate::join_context`]) and only while leaves stay above the pool's
//! calibrated sequential grain ([`pargeo_sched::current_grain`], weighted
//! by [`Producer::weight`]). Idle pools therefore pay near-sequential
//! overhead while imbalanced workloads keep subdividing where the thieves
//! are — rayon's splitter design on top of our own scheduler.
//!
//! The split *tree shape* only decides where subtrees execute, never the
//! merge order: merges follow the recursion structure and every merge in
//! this module is associative over ordered halves, so results are
//! bit-identical at any worker count and any stealing schedule.
//!
//! Adapters that preserve one-item-per-unit (`map`, `enumerate`, `zip`)
//! keep exact indexed semantics; `filter` / `filter_map` / `flat_map_iter`
//! split on *input* units and may produce any number of items per unit,
//! exactly like rayon's non-indexed adapters. `collect` always preserves
//! input order.

use std::ops::Range;
use std::sync::Arc;

/// A splittable, sequentially executable chunk of parallel work.
pub trait Producer: Send + Sized {
    type Item: Send;
    /// Whether every split unit yields exactly one item. True for sources
    /// and shape-preserving adapters (`map`, `enumerate`, `zip`); false once
    /// `filter` / `filter_map` / `flat_map_iter` enters the chain. Indexed
    /// adapters (`enumerate`, `zip`) require it — the restriction real rayon
    /// expresses statically through `IndexedParallelIterator`.
    const INDEXED: bool;
    /// Number of remaining split units (≠ items for filtering adapters).
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Splits into `[0, mid)` and `[mid, len)`.
    fn split_at(self, mid: usize) -> (Self, Self);
    /// Sequentially feeds every item to `f`.
    fn each<F: FnMut(Self::Item)>(self, f: F);
    /// Approximate work per split unit, in "items" — used to scale the
    /// sequential grain. Sources and per-item adapters are `1`; chunk
    /// producers report their chunk size so a 4096-element chunk isn't
    /// treated as one unit of work.
    fn weight(&self) -> usize {
        1
    }
}

/// Rayon-style lazy binary splitter. `splits` funds an eager phase that
/// cuts enough pieces to feed every worker once; after that a subtree
/// splits again only when a thief actually picked it up (`stolen`), which
/// resets its budget. `min` is the sequential threshold: half below it is
/// never worth a task-spawn, per the pool's calibration.
#[derive(Clone, Copy)]
struct LengthSplitter {
    splits: usize,
    min: usize,
}

impl LengthSplitter {
    fn new(weight: usize) -> Self {
        LengthSplitter {
            splits: crate::current_num_threads(),
            min: (pargeo_sched::current_grain() / weight.max(1)).max(1),
        }
    }

    fn try_split(&mut self, len: usize, stolen: bool) -> bool {
        if len / 2 < self.min {
            return false;
        }
        if stolen {
            // A thief took this subtree: another worker is idle enough to
            // steal, so re-fund the split budget for this branch.
            self.splits = crate::current_num_threads();
            true
        } else if self.splits > 0 {
            self.splits /= 2;
            true
        } else {
            false
        }
    }
}

/// Recursive fork-join driver: split per [`LengthSplitter`], merge
/// bottom-up in recursion order (deterministic regardless of who ran
/// which half).
fn drive<P, R, L, M>(p: P, leaf: &L, merge: &M, mut splitter: LengthSplitter, stolen: bool) -> R
where
    P: Producer,
    R: Send,
    L: Fn(P) -> R + Sync,
    M: Fn(R, R) -> R + Sync,
{
    let n = p.len();
    if !splitter.try_split(n, stolen) {
        return leaf(p);
    }
    let (l, r) = p.split_at(n / 2);
    let (a, b) = crate::join_context(
        |ctx| drive(l, leaf, merge, splitter, ctx.migrated()),
        |ctx| drive(r, leaf, merge, splitter, ctx.migrated()),
    );
    merge(a, b)
}

/// Entry point for terminals: builds the splitter from the producer's
/// weight and the current pool's grain, then drives.
fn run<P, R, L, M>(p: P, leaf: L, merge: M) -> R
where
    P: Producer,
    R: Send,
    L: Fn(P) -> R + Sync,
    M: Fn(R, R) -> R + Sync,
{
    let splitter = LengthSplitter::new(p.weight());
    drive(p, &leaf, &merge, splitter, false)
}

// ---------------------------------------------------------------------------
// Source producers
// ---------------------------------------------------------------------------

pub struct SliceProducer<'a, T: Sync>(&'a [T]);

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    const INDEXED: bool = true;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(mid);
        (SliceProducer(l), SliceProducer(r))
    }
    fn each<F: FnMut(Self::Item)>(self, mut f: F) {
        for x in self.0 {
            f(x);
        }
    }
}

pub struct SliceMutProducer<'a, T: Send>(&'a mut [T]);

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    const INDEXED: bool = true;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(mid);
        (SliceMutProducer(l), SliceMutProducer(r))
    }
    fn each<F: FnMut(Self::Item)>(self, mut f: F) {
        for x in self.0 {
            f(x);
        }
    }
}

pub struct ChunksProducer<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    const INDEXED: bool = true;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(at);
        (
            ChunksProducer {
                slice: l,
                size: self.size,
            },
            ChunksProducer {
                slice: r,
                size: self.size,
            },
        )
    }
    fn each<F: FnMut(Self::Item)>(self, mut f: F) {
        for c in self.slice.chunks(self.size) {
            f(c);
        }
    }
    fn weight(&self) -> usize {
        self.size
    }
}

pub struct ChunksMutProducer<'a, T: Send> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    const INDEXED: bool = true;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (
            ChunksMutProducer {
                slice: l,
                size: self.size,
            },
            ChunksMutProducer {
                slice: r,
                size: self.size,
            },
        )
    }
    fn each<F: FnMut(Self::Item)>(self, mut f: F) {
        for c in self.slice.chunks_mut(self.size) {
            f(c);
        }
    }
    fn weight(&self) -> usize {
        self.size
    }
}

pub struct RangeProducer(Range<usize>);

impl Producer for RangeProducer {
    type Item = usize;
    const INDEXED: bool = true;
    fn len(&self) -> usize {
        self.0.end.saturating_sub(self.0.start)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let m = self.0.start + mid;
        (RangeProducer(self.0.start..m), RangeProducer(m..self.0.end))
    }
    fn each<F: FnMut(Self::Item)>(self, mut f: F) {
        for i in self.0 {
            f(i);
        }
    }
}

pub struct VecProducer<T: Send>(Vec<T>);

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    const INDEXED: bool = true;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let right = self.0.split_off(mid);
        (self, VecProducer(right))
    }
    fn each<F: FnMut(Self::Item)>(self, mut f: F) {
        for x in self.0 {
            f(x);
        }
    }
}

// ---------------------------------------------------------------------------
// Adapter producers
// ---------------------------------------------------------------------------

pub struct MapProducer<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, R, F> Producer for MapProducer<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> R + Send + Sync,
{
    type Item = R;
    const INDEXED: bool = P::INDEXED;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            MapProducer {
                base: l,
                f: self.f.clone(),
            },
            MapProducer { base: r, f: self.f },
        )
    }
    fn each<G: FnMut(Self::Item)>(self, mut g: G) {
        let MapProducer { base, f } = self;
        base.each(|x| g(f(x)));
    }
    fn weight(&self) -> usize {
        self.base.weight()
    }
}

pub struct FilterProducer<P, F> {
    base: P,
    pred: Arc<F>,
}

impl<P, F> Producer for FilterProducer<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    type Item = P::Item;
    const INDEXED: bool = false;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            FilterProducer {
                base: l,
                pred: self.pred.clone(),
            },
            FilterProducer {
                base: r,
                pred: self.pred,
            },
        )
    }
    fn each<G: FnMut(Self::Item)>(self, mut g: G) {
        let FilterProducer { base, pred } = self;
        base.each(|x| {
            if pred(&x) {
                g(x);
            }
        });
    }
    fn weight(&self) -> usize {
        self.base.weight()
    }
}

pub struct FilterMapProducer<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, R, F> Producer for FilterMapProducer<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> Option<R> + Send + Sync,
{
    type Item = R;
    const INDEXED: bool = false;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            FilterMapProducer {
                base: l,
                f: self.f.clone(),
            },
            FilterMapProducer { base: r, f: self.f },
        )
    }
    fn each<G: FnMut(Self::Item)>(self, mut g: G) {
        let FilterMapProducer { base, f } = self;
        base.each(|x| {
            if let Some(y) = f(x) {
                g(y);
            }
        });
    }
    fn weight(&self) -> usize {
        self.base.weight()
    }
}

pub struct FlatMapIterProducer<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, I, F> Producer for FlatMapIterProducer<P, F>
where
    P: Producer,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(P::Item) -> I + Send + Sync,
{
    type Item = I::Item;
    const INDEXED: bool = false;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            FlatMapIterProducer {
                base: l,
                f: self.f.clone(),
            },
            FlatMapIterProducer { base: r, f: self.f },
        )
    }
    fn each<G: FnMut(Self::Item)>(self, mut g: G) {
        let FlatMapIterProducer { base, f } = self;
        base.each(|x| {
            for y in f(x) {
                g(y);
            }
        });
    }
    fn weight(&self) -> usize {
        self.base.weight()
    }
}

/// Valid on one-item-per-unit bases (sources, `map`, `zip`) — the same
/// restriction rayon expresses through `IndexedParallelIterator`.
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    const INDEXED: bool = P::INDEXED;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            EnumerateProducer {
                base: l,
                offset: self.offset,
            },
            EnumerateProducer {
                base: r,
                offset: self.offset + mid,
            },
        )
    }
    fn each<G: FnMut(Self::Item)>(self, mut g: G) {
        let mut i = self.offset;
        self.base.each(|x| {
            g((i, x));
            i += 1;
        });
    }
    fn weight(&self) -> usize {
        self.base.weight()
    }
}

/// Lockstep pairing of two equal-length one-item-per-unit producers
/// (truncated to the shorter at construction).
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    const INDEXED: bool = A::INDEXED && B::INDEXED;
    fn len(&self) -> usize {
        self.a.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(mid);
        let (bl, br) = self.b.split_at(mid);
        (ZipProducer { a: al, b: bl }, ZipProducer { a: ar, b: br })
    }
    fn each<G: FnMut(Self::Item)>(self, mut g: G) {
        // Internal iteration cannot interleave two producers, so one leaf's
        // right side is buffered (items are usually references, and the
        // buffer spans one leaf, not the input). Stepping both sides with
        // split_at(1) would avoid the buffer but is O(n²) for Vec-backed
        // producers, whose split_off shifts the tail on every split.
        let mut right = Vec::with_capacity(self.b.len());
        self.b.each(|y| right.push(y));
        let mut it = right.into_iter();
        self.a.each(|x| {
            if let Some(y) = it.next() {
                g((x, y));
            }
        });
    }
    fn weight(&self) -> usize {
        self.a.weight().max(self.b.weight())
    }
}

// ---------------------------------------------------------------------------
// The user-facing iterator wrapper
// ---------------------------------------------------------------------------

/// A parallel iterator: a [`Producer`] plus adapter/terminal methods.
pub struct ParIter<P>(P);

impl<P: Producer> ParIter<P> {
    pub fn map<R, F>(self, f: F) -> ParIter<MapProducer<P, F>>
    where
        R: Send,
        F: Fn(P::Item) -> R + Send + Sync,
    {
        ParIter(MapProducer {
            base: self.0,
            f: Arc::new(f),
        })
    }

    pub fn filter<F>(self, pred: F) -> ParIter<FilterProducer<P, F>>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        ParIter(FilterProducer {
            base: self.0,
            pred: Arc::new(pred),
        })
    }

    pub fn filter_map<R, F>(self, f: F) -> ParIter<FilterMapProducer<P, F>>
    where
        R: Send,
        F: Fn(P::Item) -> Option<R> + Send + Sync,
    {
        ParIter(FilterMapProducer {
            base: self.0,
            f: Arc::new(f),
        })
    }

    pub fn flat_map_iter<I, F>(self, f: F) -> ParIter<FlatMapIterProducer<P, F>>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(P::Item) -> I + Send + Sync,
    {
        ParIter(FlatMapIterProducer {
            base: self.0,
            f: Arc::new(f),
        })
    }

    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>> {
        assert!(
            P::INDEXED,
            "enumerate() after filter/filter_map/flat_map_iter is not indexed \
             (real rayon rejects this at compile time via IndexedParallelIterator)"
        );
        ParIter(EnumerateProducer {
            base: self.0,
            offset: 0,
        })
    }

    pub fn zip<Q: Producer>(self, other: ParIter<Q>) -> ParIter<ZipProducer<P, Q>> {
        assert!(
            P::INDEXED && Q::INDEXED,
            "zip() requires indexed sides (no filter/filter_map/flat_map_iter \
             upstream); real rayon rejects this at compile time"
        );
        let n = self.0.len().min(other.0.len());
        let (a, _) = self.0.split_at(n);
        let (b, _) = other.0.split_at(n);
        ParIter(ZipProducer { a, b })
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        run(self.0, |p: P| p.each(&f), |(), ()| ());
    }

    pub fn collect<C: FromParallelIterator<P::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        run(
            self.0,
            |p: P| {
                let mut acc = Some(identity());
                p.each(|x| acc = Some(op(acc.take().expect("reduce accumulator"), x)));
                acc.expect("reduce accumulator")
            },
            &op,
        )
    }

    pub fn reduce_with<OP>(self, op: OP) -> Option<P::Item>
    where
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        run(
            self.0,
            |p: P| {
                let mut acc: Option<P::Item> = None;
                p.each(|x| {
                    acc = Some(match acc.take() {
                        Some(a) => op(a, x),
                        None => x,
                    });
                });
                acc
            },
            |a, b| match (a, b) {
                (Some(a), Some(b)) => Some(op(a, b)),
                (a, None) => a,
                (None, b) => b,
            },
        )
    }

    pub fn count(self) -> usize {
        run(
            self.0,
            |p: P| {
                let mut n = 0usize;
                p.each(|_| n += 1);
                n
            },
            |a, b| a + b,
        )
    }

    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        run(
            self.0,
            |p: P| {
                let mut items = Vec::new();
                p.each(|x| items.push(x));
                items.into_iter().sum::<S>()
            },
            |a, b| [a, b].into_iter().sum::<S>(),
        )
    }

    pub fn min(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        self.reduce_with(|a, b| if b < a { b } else { a })
    }

    pub fn max(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        self.reduce_with(|a, b| if b > a { b } else { a })
    }

    pub fn any<F>(self, pred: F) -> bool
    where
        F: Fn(P::Item) -> bool + Send + Sync,
    {
        self.map(pred).reduce(|| false, |a, b| a || b)
    }

    pub fn all<F>(self, pred: F) -> bool
    where
        F: Fn(P::Item) -> bool + Send + Sync,
    {
        self.map(pred).reduce(|| true, |a, b| a && b)
    }
}

/// Order-preserving parallel `collect`.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<P: Producer<Item = T>>(iter: ParIter<P>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: Producer<Item = T>>(iter: ParIter<P>) -> Self {
        run(
            iter.0,
            |p: P| {
                let mut v = Vec::new();
                p.each(|x| v.push(x));
                v
            },
            |mut a: Vec<T>, mut b: Vec<T>| {
                a.append(&mut b);
                a
            },
        )
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits (the prelude)
// ---------------------------------------------------------------------------

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>>;
    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>> {
        ParIter(SliceProducer(self))
    }
    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(size != 0, "chunk size must be non-zero");
        ParIter(ChunksProducer { slice: self, size })
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>>;
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>> {
        ParIter(SliceMutProducer(self))
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(size != 0, "chunk size must be non-zero");
        ParIter(ChunksMutProducer { slice: self, size })
    }
}

/// `into_par_iter` on owning/indexable sources.
pub trait IntoParallelIterator {
    type Producer: Producer;
    fn into_par_iter(self) -> ParIter<Self::Producer>;
}

impl IntoParallelIterator for Range<usize> {
    type Producer = RangeProducer;
    fn into_par_iter(self) -> ParIter<RangeProducer> {
        ParIter(RangeProducer(self))
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Producer = VecProducer<T>;
    fn into_par_iter(self) -> ParIter<VecProducer<T>> {
        ParIter(VecProducer(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_adapters_match_sequential() {
        let v: Vec<i64> = (0..50_000).collect();
        let par: Vec<i64> = v
            .par_iter()
            .enumerate()
            .filter(|(i, _)| i % 3 == 0)
            .map(|(i, &x)| x + i as i64)
            .collect();
        let seq: Vec<i64> = v
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 == 0)
            .map(|(i, &x)| x + i as i64)
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn zip_and_chunks_line_up() {
        let a: Vec<u32> = (0..10_000).collect();
        let mut out = vec![0u32; 10_000];
        out.par_iter_mut()
            .zip(a.par_iter())
            .for_each(|(o, &x)| *o = x + 1);
        assert!(out.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));

        let sums: Vec<u32> = a.par_chunks(100).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 100);
        assert_eq!(sums.iter().sum::<u32>(), a.iter().sum::<u32>());
    }

    #[test]
    fn reduce_and_flat_map() {
        let total = (0..1_000usize)
            .into_par_iter()
            .map(|i| i as u64)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 499_500);
        let doubled: Vec<usize> = (0..100usize)
            .into_par_iter()
            .flat_map_iter(|i| [i, i])
            .collect();
        assert_eq!(doubled.len(), 200);
        assert_eq!(doubled[..4], [0, 0, 1, 1]);
    }
}
