//! # pargeo-delaunay — 2D Delaunay triangulation (paper Module 3)
//!
//! Incremental Bowyer–Watson with exact `incircle`, Morton-order (BRIO
//! style) insertion, and — in the parallel variant — **the paper's
//! reservation technique applied to triangulation**: a batch of uninserted
//! points computes their conflict cavities, priority-writes their ranks
//! onto the cavity triangles plus the boundary ring, and the points that
//! win every reservation retriangulate disjoint cavities in parallel. This
//! is exactly the Figure 5 skeleton with "facet" = "triangle" and "visible"
//! = "inside the circumcircle", which is how ParGeo reuses one parallel
//! scheme across incremental geometry algorithms.
//!
//! The triangulation is seeded with a far-away enclosing super-triangle
//! whose corners are removed at the end. The corners sit `10⁶ ×` the input
//! diameter away; with exact predicates this yields the true Delaunay
//! triangulation for all but adversarially flat inputs (the classic
//! trade-off of non-symbolic super-triangles; the `validate` module's
//! empty-circumcircle check guards the experiments).

#![warn(missing_docs)]

mod bw;
mod graphs;
mod inc;
mod tri;

pub use bw::{delaunay, delaunay_seeded, delaunay_seq, try_delaunay, Delaunay};
pub use graphs::{delaunay_edges, gabriel_graph};
pub use inc::{DelaunayBatchOutcome, DelaunayIncremental};
pub use tri::validate_delaunay;
