//! Graph extraction from the triangulation: the Delaunay graph and the
//! Gabriel graph (Table 1 rows "Delaunay Graph" and "Gabriel Graph").

use crate::bw::Delaunay;
use pargeo_geometry::Point2;

/// Undirected Delaunay edges, deduplicated, `(min, max)` ordered.
pub fn delaunay_edges(d: &Delaunay) -> Vec<(u32, u32)> {
    let mut edges: Vec<(u32, u32)> = d
        .triangles
        .iter()
        .flat_map(|t| {
            (0..3).map(move |i| {
                let (a, b) = (t[i], t[(i + 1) % 3]);
                (a.min(b), a.max(b))
            })
        })
        .collect();
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// The Gabriel graph: Delaunay edges whose diametral circle is empty.
///
/// Local test: an edge `(u, v)` is Gabriel iff the opposite vertex of each
/// adjacent triangle lies outside (or on) the circle with `uv` as diameter,
/// i.e. the angle it subtends at the opposite vertex is at most 90°.
pub fn gabriel_graph(points: &[Point2], d: &Delaunay) -> Vec<(u32, u32)> {
    use std::collections::HashMap;
    // edge -> opposite vertices (1 for hull edges, 2 for interior).
    let mut opposite: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    for t in &d.triangles {
        for i in 0..3 {
            let (a, b) = (t[i], t[(i + 1) % 3]);
            let w = t[(i + 2) % 3];
            opposite.entry((a.min(b), a.max(b))).or_default().push(w);
        }
    }
    let mut out: Vec<(u32, u32)> = opposite
        .into_iter()
        .filter(|((u, v), opps)| {
            let pu = points[*u as usize];
            let pv = points[*v as usize];
            opps.iter().all(|&w| {
                let pw = points[w as usize];
                // w strictly inside the diametral circle ⇔ angle(u,w,v) > 90°
                // ⇔ (u - w)·(v - w) < 0.
                (pu - pw).dot(&(pv - pw)) >= 0.0
            })
        })
        .map(|(e, _)| e)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bw::delaunay;
    use pargeo_datagen::uniform_cube;

    /// Brute-force Gabriel graph definition.
    fn gabriel_brute(points: &[Point2]) -> Vec<(u32, u32)> {
        let n = points.len();
        let mut out = Vec::new();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                let pu = points[u as usize];
                let pv = points[v as usize];
                let empty = (0..n as u32).all(|w| {
                    if w == u || w == v {
                        return true;
                    }
                    let pw = points[w as usize];
                    (pu - pw).dot(&(pv - pw)) >= 0.0
                });
                if empty {
                    out.push((u, v));
                }
            }
        }
        out
    }

    #[test]
    fn gabriel_matches_brute_force() {
        for seed in 0..3 {
            let pts = uniform_cube::<2>(150, seed);
            let d = delaunay(&pts);
            let got = gabriel_graph(&pts, &d);
            let want = gabriel_brute(&pts);
            assert_eq!(got, want, "seed={seed}");
        }
    }

    #[test]
    fn gabriel_is_subgraph_of_delaunay() {
        let pts = uniform_cube::<2>(500, 5);
        let d = delaunay(&pts);
        let de: std::collections::HashSet<(u32, u32)> = delaunay_edges(&d).into_iter().collect();
        for e in gabriel_graph(&pts, &d) {
            assert!(de.contains(&e));
        }
    }

    #[test]
    fn delaunay_graph_is_connected_and_planar_sized() {
        let n = 1_000;
        let pts = uniform_cube::<2>(n, 6);
        let d = delaunay(&pts);
        let edges = delaunay_edges(&d);
        assert!(edges.len() <= 3 * n - 6);
        // Connectivity via union-find.
        let mut uf = pargeo_wspd_free_unionfind(n);
        for &(u, v) in &edges {
            union(&mut uf, u, v);
        }
        let root = find(&mut uf, 0);
        for i in 0..n as u32 {
            assert_eq!(find(&mut uf, i), root);
        }
    }

    // Tiny local union-find to avoid a dev-dependency cycle.
    fn pargeo_wspd_free_unionfind(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }
    fn find(p: &mut [u32], mut x: u32) -> u32 {
        while p[x as usize] != x {
            p[x as usize] = p[p[x as usize] as usize];
            x = p[x as usize];
        }
        x
    }
    fn union(p: &mut [u32], a: u32, b: u32) {
        let (ra, rb) = (find(p, a), find(p, b));
        if ra != rb {
            p[ra as usize] = rb;
        }
    }

    #[test]
    fn gabriel_of_square_grid_is_subset_of_definition() {
        // Maximally cocircular input: both diagonals of every unit square
        // satisfy the open-disk Gabriel definition, but only one lives in
        // the triangulation, so the DT-local extraction returns a subset.
        // Every axis-aligned unit edge, however, must be present.
        let mut pts = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                pts.push(Point2::new([i as f64, j as f64]));
            }
        }
        let d = delaunay(&pts);
        let got = gabriel_graph(&pts, &d);
        let want: std::collections::HashSet<(u32, u32)> = gabriel_brute(&pts).into_iter().collect();
        for e in &got {
            assert!(want.contains(e), "non-Gabriel edge {e:?} reported");
        }
        let got_set: std::collections::HashSet<(u32, u32)> = got.into_iter().collect();
        for i in 0..4u32 {
            for j in 0..3u32 {
                let a = i * 4 + j;
                assert!(got_set.contains(&(a, a + 1)), "missing vertical edge {a}");
                let b = j * 4 + i;
                assert!(got_set.contains(&(b, b + 4)), "missing horizontal edge {b}");
            }
        }
    }
}
