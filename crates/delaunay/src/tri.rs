//! Triangle mesh with edge adjacency and conflict lists — the Delaunay
//! analogue of the hull's facet mesh.

use pargeo_geometry::{incircle, orient2d, Orientation, Point2};

#[derive(Debug)]
pub(crate) struct Tri {
    /// Vertex ids, counterclockwise.
    pub v: [u32; 3],
    /// `nbr[i]` = triangle across edge `(v[i], v[(i+1)%3])`;
    /// `u32::MAX` on the outer boundary of the super-triangle.
    pub nbr: [u32; 3],
    /// Conflict list: uninserted points lying inside this triangle.
    pub pts: Vec<u32>,
    pub alive: bool,
}

#[derive(Debug)]
pub(crate) struct TriMesh {
    /// Input points followed by the three super-triangle corners.
    pub points: Vec<Point2>,
    pub tris: Vec<Tri>,
    pub alive_count: usize,
    /// First super-vertex id (`==` original input length).
    pub super_base: u32,
}

impl TriMesh {
    /// Seeds the mesh with a super-triangle enclosing all `points`.
    pub fn new(points: &[Point2]) -> Self {
        let mut bbox = pargeo_geometry::Bbox::empty();
        for p in points {
            bbox.extend(p);
        }
        let c = bbox.center();
        let r = bbox.diag_sq().sqrt().max(1.0) * 1e6;
        let super_base = points.len() as u32;
        let mut all = points.to_vec();
        // Equilateral-ish super-triangle, counterclockwise.
        all.push(Point2::new([c[0] - 1.8 * r, c[1] - r]));
        all.push(Point2::new([c[0] + 1.8 * r, c[1] - r]));
        all.push(Point2::new([c[0], c[1] + 2.1 * r]));
        debug_assert_eq!(
            orient2d(
                &all[super_base as usize],
                &all[super_base as usize + 1],
                &all[super_base as usize + 2]
            ),
            Orientation::Positive
        );
        TriMesh {
            points: all,
            tris: vec![Tri {
                v: [super_base, super_base + 1, super_base + 2],
                nbr: [u32::MAX; 3],
                pts: Vec::new(),
                alive: true,
            }],
            alive_count: 1,
            super_base,
        }
    }

    /// Strict conflict: `q` lies strictly inside the circumcircle of `t`.
    #[inline]
    pub fn conflicts(&self, t: u32, q: u32) -> bool {
        let v = &self.tris[t as usize].v;
        incircle(
            &self.points[v[0] as usize],
            &self.points[v[1] as usize],
            &self.points[v[2] as usize],
            &self.points[q as usize],
        ) == Orientation::Positive
    }

    /// True iff `q` lies inside triangle `t` (boundary inclusive).
    #[inline]
    pub fn contains(&self, t: u32, q: u32) -> bool {
        let v = &self.tris[t as usize].v;
        let p = &self.points[q as usize];
        (0..3).all(|i| {
            orient2d(
                &self.points[v[i] as usize],
                &self.points[v[(i + 1) % 3] as usize],
                p,
            ) != Orientation::Negative
        })
    }

    /// True iff `q` coincides with a vertex of `t`.
    #[inline]
    pub fn is_vertex_of(&self, t: u32, q: u32) -> bool {
        let p = self.points[q as usize];
        self.tris[t as usize]
            .v
            .iter()
            .any(|&v| self.points[v as usize] == p)
    }

    /// BFS over the conflict region of `q` seeded at containing triangle
    /// `t0` (which always conflicts).
    pub fn conflict_region(&self, t0: u32, q: u32) -> Vec<u32> {
        debug_assert!(self.tris[t0 as usize].alive);
        let mut region = vec![t0];
        let mut seen = std::collections::HashSet::new();
        seen.insert(t0);
        let mut stack = vec![t0];
        while let Some(t) = stack.pop() {
            for &g in &self.tris[t as usize].nbr {
                if g != u32::MAX && seen.insert(g) && self.conflicts(g, q) {
                    region.push(g);
                    stack.push(g);
                }
            }
        }
        region
    }

    /// Alive triangles adjacent to but outside the region.
    pub fn boundary_of(&self, region: &[u32]) -> Vec<u32> {
        let mut seen: std::collections::HashSet<u32> = region.iter().copied().collect();
        let mut out = Vec::new();
        for &t in region {
            for &g in &self.tris[t as usize].nbr {
                if g != u32::MAX && seen.insert(g) {
                    out.push(g);
                }
            }
        }
        out
    }

    /// Retriangulates the cavity `region` around the new vertex `q`.
    /// Returns the new triangle ids. Caller owns the region exclusively.
    pub fn insert_vertex(&mut self, q: u32, region: &[u32]) -> Vec<u32> {
        let in_region: std::collections::HashSet<u32> = region.iter().copied().collect();
        // Cavity boundary edges, directed as in their (dead) triangle.
        struct BEdge {
            a: u32,
            b: u32,
            outer: u32,
            outer_slot: usize,
        }
        let mut edges: Vec<BEdge> = Vec::new();
        for &t in region {
            let tri = &self.tris[t as usize];
            for i in 0..3 {
                let g = tri.nbr[i];
                if g == u32::MAX || !in_region.contains(&g) {
                    let a = tri.v[i];
                    let b = tri.v[(i + 1) % 3];
                    let outer_slot = if g == u32::MAX {
                        usize::MAX
                    } else {
                        let gv = &self.tris[g as usize].v;
                        (0..3)
                            .find(|&j| gv[j] == b && gv[(j + 1) % 3] == a)
                            .expect("reverse edge in outer triangle")
                    };
                    edges.push(BEdge {
                        a,
                        b,
                        outer: g,
                        outer_slot,
                    });
                }
            }
        }
        debug_assert!(edges.len() >= 3);
        // Order into the boundary cycle.
        let by_start: std::collections::HashMap<u32, usize> =
            edges.iter().enumerate().map(|(i, e)| (e.a, i)).collect();
        debug_assert_eq!(by_start.len(), edges.len(), "cavity boundary not simple");
        let mut order = Vec::with_capacity(edges.len());
        let mut cur = 0usize;
        for _ in 0..edges.len() {
            order.push(cur);
            cur = by_start[&edges[cur].b];
        }
        debug_assert_eq!(cur, 0, "cavity boundary must close");
        let base = self.tris.len() as u32;
        let k = order.len() as u32;
        for (pos, &ei) in order.iter().enumerate() {
            let e = &edges[ei];
            let id = base + pos as u32;
            let next = base + ((pos as u32 + 1) % k);
            let prev = base + ((pos as u32 + k - 1) % k);
            debug_assert_eq!(
                orient2d(
                    &self.points[e.a as usize],
                    &self.points[e.b as usize],
                    &self.points[q as usize]
                ),
                Orientation::Positive,
                "new triangle must be CCW"
            );
            self.tris.push(Tri {
                v: [e.a, e.b, q],
                nbr: [e.outer, next, prev],
                pts: Vec::new(),
                alive: true,
            });
            if e.outer != u32::MAX {
                self.tris[e.outer as usize].nbr[e.outer_slot] = id;
            }
        }
        for &t in region {
            self.tris[t as usize].alive = false;
        }
        self.alive_count += k as usize;
        self.alive_count -= region.len();
        (base..base + k).collect()
    }

    /// Splices `extra` input points in front of the super-triangle
    /// corners, shifting the three super ids in every triangle's vertex
    /// list. Conflict lists and neighbor links hold real-point and
    /// triangle ids respectively, so they are unaffected. The new points
    /// must lie inside the bbox the super-triangle was built from, or the
    /// mesh no longer encloses its input.
    pub fn append_points(&mut self, extra: &[Point2]) {
        let old_base = self.super_base;
        let add = extra.len() as u32;
        let at = old_base as usize;
        self.points.splice(at..at, extra.iter().copied());
        self.super_base += add;
        for t in &mut self.tris {
            for v in &mut t.v {
                if *v >= old_base {
                    *v += add;
                }
            }
        }
    }

    /// Extracts the real triangles (no super vertices).
    pub fn extract(&self) -> Vec<[u32; 3]> {
        self.tris
            .iter()
            .filter(|t| t.alive && t.v.iter().all(|&v| v < self.super_base))
            .map(|t| t.v)
            .collect()
    }
}

/// Validates the Delaunay property directly: every triangle is CCW and no
/// input point lies strictly inside any circumcircle. `O(T · n)` — tests
/// only.
pub fn validate_delaunay(points: &[Point2], triangles: &[[u32; 3]]) -> Result<(), String> {
    for (ti, t) in triangles.iter().enumerate() {
        let (a, b, c) = (
            &points[t[0] as usize],
            &points[t[1] as usize],
            &points[t[2] as usize],
        );
        if orient2d(a, b, c) != Orientation::Positive {
            return Err(format!("triangle {ti} not CCW: {t:?}"));
        }
        for (qi, q) in points.iter().enumerate() {
            if incircle(a, b, c, q) == Orientation::Positive {
                return Err(format!(
                    "point {qi} strictly inside circumcircle of triangle {ti} {t:?}"
                ));
            }
        }
    }
    Ok(())
}
