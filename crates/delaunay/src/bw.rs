//! Bowyer–Watson drivers: sequential (Morton/BRIO order) and the parallel
//! reservation-based batch insertion.

use crate::tri::TriMesh;
use pargeo_geometry::{GeoError, GeoResult, Point2};
use pargeo_parlay as parlay;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

const EMPTY: usize = usize::MAX;

/// A Delaunay triangulation of the input point set (duplicates collapse
/// onto their first occurrence; collinear inputs produce no triangles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delaunay {
    /// CCW triangles over original input indices.
    pub triangles: Vec<[u32; 3]>,
}

impl Delaunay {
    /// Number of triangles.
    pub fn len(&self) -> usize {
        self.triangles.len()
    }

    /// True iff the input admitted no full-dimensional triangulation.
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }
}

/// Sequential Bowyer–Watson, inserting in Morton order (a BRIO-style
/// locality order that keeps point-location walks short).
pub fn delaunay_seq(points: &[Point2]) -> Delaunay {
    let mut mesh = TriMesh::new(points);
    let n = points.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    {
        let mut pts = points.to_vec();
        let ids = pargeo_morton::morton_sort(&mut pts);
        order.copy_from_slice(&ids);
    }
    let mut tri_of: Vec<u32> = vec![0; n];
    mesh.tris[0].pts = order.clone();
    for &q in &order {
        let t0 = tri_of[q as usize];
        if !mesh.tris[t0 as usize].alive {
            // Stale only if q duplicates an inserted vertex whose cavity
            // consumed the triangle — re-locate among alive triangles is
            // unnecessary because redistribution keeps refs fresh.
            unreachable!("conflict list kept tri_of fresh");
        }
        if mesh.is_vertex_of(t0, q) {
            continue; // duplicate point
        }
        let region = mesh.conflict_region(t0, q);
        let new_tris = mesh.insert_vertex(q, &region);
        for &dead in &region {
            let pts = std::mem::take(&mut mesh.tris[dead as usize].pts);
            for t in pts {
                if t == q {
                    continue;
                }
                if let Some(&nt) = new_tris.iter().find(|&&nt| mesh.contains(nt, t)) {
                    tri_of[t as usize] = nt;
                    mesh.tris[nt as usize].pts.push(t);
                } else {
                    debug_assert!(false, "cavity must cover its points");
                }
            }
        }
    }
    Delaunay {
        triangles: mesh.extract(),
    }
}

/// Parallel reservation-based Delaunay (default seed).
pub fn delaunay(points: &[Point2]) -> Delaunay {
    delaunay_seeded(points, 42)
}

/// Non-panicking Delaunay triangulation: rejects inputs that admit no
/// full-dimensional triangulation — empty, fewer than three points, or all
/// points collinear/coincident — with a typed [`GeoError`] instead of
/// returning an empty triangle list.
pub fn try_delaunay(points: &[Point2]) -> GeoResult<Delaunay> {
    if points.is_empty() {
        return Err(GeoError::EmptyInput { op: "delaunay" });
    }
    if points.len() < 3 {
        return Err(GeoError::TooFewPoints {
            op: "delaunay",
            needed: 3,
            got: points.len(),
        });
    }
    let d = delaunay(points);
    if d.is_empty() {
        return Err(GeoError::Degenerate {
            op: "delaunay",
            what: "collinear",
        });
    }
    Ok(d)
}

struct Plan {
    q: u32,
    region: Vec<u32>,
    boundary: Vec<u32>,
    duplicate: bool,
}

/// Parallel reservation-based Delaunay with an explicit permutation seed.
pub fn delaunay_seeded(points: &[Point2], seed: u64) -> Delaunay {
    let n = points.len();
    if n < 3 {
        return Delaunay {
            triangles: Vec::new(),
        };
    }
    let mut mesh = TriMesh::new(points);
    let mut reservations: Vec<AtomicUsize> = vec![AtomicUsize::new(EMPTY)];
    let order = parlay::random_permutation(n, seed);
    let mut tri_of: Vec<u32> = vec![0; n];
    let mut alive_pt: Vec<bool> = vec![true; n];
    mesh.tris[0].pts = order.clone();
    let mut p: Vec<u32> = order;

    while !p.is_empty() {
        let r = round_size(mesh.alive_count, parlay::num_threads(), p.len());
        let batch = &p[..r];
        // Phase A: conflict regions + reservations.
        let plans: Vec<Plan> = batch
            .par_iter()
            .enumerate()
            .map(|(rank, &q)| {
                let t0 = tri_of[q as usize];
                if mesh.is_vertex_of(t0, q) {
                    return Plan {
                        q,
                        region: Vec::new(),
                        boundary: Vec::new(),
                        duplicate: true,
                    };
                }
                let region = mesh.conflict_region(t0, q);
                let boundary = mesh.boundary_of(&region);
                for &t in region.iter().chain(&boundary) {
                    let slot = &reservations[t as usize];
                    if slot.load(Ordering::Relaxed) > rank {
                        slot.fetch_min(rank, Ordering::Relaxed);
                    }
                }
                Plan {
                    q,
                    region,
                    boundary,
                    duplicate: false,
                }
            })
            .collect();
        // Phase A': winners.
        let success: Vec<bool> = plans
            .par_iter()
            .enumerate()
            .map(|(rank, pl)| {
                !pl.duplicate
                    && pl
                        .region
                        .iter()
                        .chain(&pl.boundary)
                        .all(|&t| reservations[t as usize].load(Ordering::Relaxed) == rank)
            })
            .collect();
        // Phase B: sequential surgery per winner.
        let mut winners: Vec<(usize, Vec<u32>)> = Vec::new();
        for (rank, pl) in plans.iter().enumerate() {
            if pl.duplicate {
                alive_pt[pl.q as usize] = false;
                continue;
            }
            if !success[rank] {
                continue;
            }
            let new_tris = mesh.insert_vertex(pl.q, &pl.region);
            while reservations.len() < mesh.tris.len() {
                reservations.push(AtomicUsize::new(EMPTY));
            }
            alive_pt[pl.q as usize] = false;
            winners.push((rank, new_tris));
        }
        // Phase C: parallel redistribution by containment.
        {
            let tris_ptr = SendPtr(mesh.tris.as_mut_ptr());
            let tri_of_ptr = SendPtr(tri_of.as_mut_ptr());
            let plans_ref = &plans;
            let mesh_points: &[Point2] = &mesh.points;
            winners.par_iter().for_each(|(rank, new_tris)| {
                let (tris_ptr, tri_of_ptr) = (tris_ptr, tri_of_ptr);
                let pl = &plans_ref[*rank];
                // SAFETY: the reservation gives this winner exclusive
                // ownership of its cavity triangles, the new triangles, and
                // the points in the cavity's conflict lists.
                unsafe {
                    for &dead in &pl.region {
                        let pts = std::mem::take(&mut (*tris_ptr.0.add(dead as usize)).pts);
                        for t in pts {
                            if t == pl.q {
                                continue;
                            }
                            let mut placed = false;
                            for &nt in new_tris {
                                if contains_raw(mesh_points, tris_ptr.0, nt, t) {
                                    *tri_of_ptr.0.add(t as usize) = nt;
                                    (*tris_ptr.0.add(nt as usize)).pts.push(t);
                                    placed = true;
                                    break;
                                }
                            }
                            debug_assert!(placed, "cavity must cover its points");
                            if !placed {
                                // Defensive: drop rather than corrupt.
                                *tri_of_ptr.0.add(t as usize) = u32::MAX;
                            }
                        }
                    }
                }
            });
        }
        // Phase D: reset + pack.
        plans.par_iter().for_each(|pl| {
            for &t in pl.region.iter().chain(&pl.boundary) {
                reservations[t as usize].store(EMPTY, Ordering::Relaxed);
            }
        });
        p = parlay::filter(&p, |&t| {
            alive_pt[t as usize] && tri_of[t as usize] != u32::MAX
        });
    }
    Delaunay {
        triangles: mesh.extract(),
    }
}

/// Batch size: grows with both the mesh (conflict cavities must be sparse
/// enough for reservations to succeed) and the remaining points (each
/// round packs `P`, so the round count must stay logarithmic).
fn round_size(alive_tris: usize, threads: usize, remaining: usize) -> usize {
    if alive_tris < 32 {
        return 1;
    }
    let floor = (8 * threads).max(1);
    let adaptive = (remaining / 8).min(alive_tris / 8);
    floor.max(adaptive).min(remaining)
}

#[inline]
unsafe fn contains_raw(points: &[Point2], tris: *const crate::tri::Tri, t: u32, q: u32) -> bool {
    let v = unsafe { &(*tris.add(t as usize)).v };
    let p = &points[q as usize];
    (0..3).all(|i| {
        pargeo_geometry::orient2d(&points[v[i] as usize], &points[v[(i + 1) % 3] as usize], p)
            != pargeo_geometry::Orientation::Negative
    })
}

struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tri::validate_delaunay;
    use pargeo_datagen::{seed_spreader, uniform_cube, SeedSpreaderParams};

    fn canonical(tris: &[[u32; 3]]) -> Vec<[u32; 3]> {
        let mut out: Vec<[u32; 3]> = tris
            .iter()
            .map(|t| {
                // Rotate so the smallest vertex leads (CCW preserved).
                let k = (0..3).min_by_key(|&i| t[i]).unwrap();
                [t[k], t[(k + 1) % 3], t[(k + 2) % 3]]
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn seq_is_delaunay_uniform() {
        let pts = uniform_cube::<2>(400, 1);
        let d = delaunay_seq(&pts);
        validate_delaunay(&pts, &d.triangles).unwrap();
    }

    #[test]
    fn parallel_matches_sequential() {
        for seed in 0..3 {
            let pts = uniform_cube::<2>(500, seed);
            let s = delaunay_seq(&pts);
            let p = delaunay(&pts);
            validate_delaunay(&pts, &p.triangles).unwrap();
            assert_eq!(
                canonical(&s.triangles),
                canonical(&p.triangles),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn clustered_data() {
        let pts = seed_spreader::<2>(600, 5, SeedSpreaderParams::default());
        let d = delaunay(&pts);
        validate_delaunay(&pts, &d.triangles).unwrap();
    }

    #[test]
    fn try_delaunay_rejects_degenerate_inputs() {
        assert_eq!(
            try_delaunay(&[]),
            Err(GeoError::EmptyInput { op: "delaunay" })
        );
        let two = [Point2::new([0.0, 0.0]), Point2::new([1.0, 0.0])];
        assert_eq!(
            try_delaunay(&two),
            Err(GeoError::TooFewPoints {
                op: "delaunay",
                needed: 3,
                got: 2
            })
        );
        let line: Vec<Point2> = (0..30).map(|i| Point2::new([i as f64, i as f64])).collect();
        assert_eq!(
            try_delaunay(&line),
            Err(GeoError::Degenerate {
                op: "delaunay",
                what: "collinear"
            })
        );
        let pts = uniform_cube::<2>(100, 9);
        assert!(!try_delaunay(&pts).unwrap().is_empty());
    }

    #[test]
    fn euler_and_edge_sharing() {
        let pts = uniform_cube::<2>(800, 7);
        let d = delaunay(&pts);
        let mut edge_count: std::collections::HashMap<(u32, u32), u32> =
            std::collections::HashMap::new();
        for t in &d.triangles {
            for i in 0..3 {
                let (a, b) = (t[i], t[(i + 1) % 3]);
                *edge_count.entry((a.min(b), a.max(b))).or_default() += 1;
            }
        }
        // Every edge borders one (hull) or two (interior) triangles.
        assert!(edge_count.values().all(|&c| c <= 2));
        let e = edge_count.len() as i64;
        let f = d.triangles.len() as i64 + 1; // plus the outer face
        let mut verts: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for t in &d.triangles {
            verts.extend(t.iter());
        }
        let v = verts.len() as i64;
        assert_eq!(v - e + f, 2, "Euler failed: V={v} E={e} F={f}");
    }

    #[test]
    fn duplicates_collapse() {
        let mut pts = uniform_cube::<2>(200, 9);
        let extra: Vec<Point2> = pts.iter().step_by(4).copied().collect();
        pts.extend(extra);
        let d = delaunay(&pts);
        validate_delaunay(&pts, &d.triangles).unwrap();
        // No triangle uses two copies of the same location.
        for t in &d.triangles {
            assert_ne!(pts[t[0] as usize], pts[t[1] as usize]);
            assert_ne!(pts[t[1] as usize], pts[t[2] as usize]);
            assert_ne!(pts[t[0] as usize], pts[t[2] as usize]);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(delaunay(&[]).is_empty());
        assert!(delaunay(&[Point2::new([0.0, 0.0])]).is_empty());
        let two = [Point2::new([0.0, 0.0]), Point2::new([1.0, 1.0])];
        assert!(delaunay(&two).is_empty());
        let collinear: Vec<Point2> = (0..50).map(|i| Point2::new([i as f64, i as f64])).collect();
        assert!(delaunay(&collinear).is_empty());
        assert!(delaunay_seq(&collinear).is_empty());
    }

    #[test]
    fn grid_with_cocircular_points_is_valid() {
        // A regular grid is maximally degenerate (every quad cocircular).
        let mut pts = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                pts.push(Point2::new([i as f64, j as f64]));
            }
        }
        let d = delaunay(&pts);
        validate_delaunay(&pts, &d.triangles).unwrap();
        // A triangulated 11x11 grid of unit squares: 242 triangles.
        assert_eq!(d.triangles.len(), 242);
    }

    #[test]
    fn deterministic_across_pool_sizes() {
        let pts = uniform_cube::<2>(1_000, 11);
        let a = parlay::with_threads(1, || delaunay(&pts));
        let b = parlay::with_threads(4, || delaunay(&pts));
        assert_eq!(canonical(&a.triangles), canonical(&b.triangles));
    }
}
