//! Resumable batch-insert maintenance of a 2D Delaunay triangulation.
//!
//! [`DelaunayIncremental`] keeps the Bowyer–Watson mesh of a growing
//! *prefix* of a point slice alive across insert batches. Determinism is
//! the whole point: after inserting a fixed point sequence into a fixed
//! super-triangle, the alive triangle **set** is uniquely determined —
//! each insertion removes exactly the (connected) set of triangles whose
//! circumcircle strictly contains the new point and stars the cavity —
//! so [`DelaunayIncremental::edges`] after any batch schedule is
//! bit-identical to a fresh index-order build over the same prefix, even
//! on maximally cocircular inputs where the triangulation itself is not
//! unique.
//!
//! Two preconditions guard that equivalence:
//!
//! - the super-triangle is a pure function of the input bbox, so every
//!   appended point must lie inside the bbox of the originally-built
//!   prefix ([`DelaunayBatchOutcome::OutsideBounds`] otherwise — the
//!   caller rebuilds);
//! - batches append in index order, matching the canonical full build
//!   ([`DelaunayIncremental::try_build`], which the store also uses for
//!   its full recomputes).

use crate::bw::Delaunay;
use crate::tri::TriMesh;
use pargeo_geometry::{orient2d, Bbox, GeoError, GeoResult, Orientation, Point2};

/// What a batch insert did to the maintained triangulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelaunayBatchOutcome {
    /// The batch was applied; the engine now covers the longer prefix.
    Applied {
        /// Non-duplicate points actually inserted.
        inserted: usize,
        /// Triangles killed by cavity retriangulation.
        killed: usize,
    },
    /// The batch killed more than `max_damage` of the structure; the
    /// engine is poisoned and must be discarded (rebuild from scratch).
    DamageExceeded {
        /// Triangles killed before the budget ran out.
        killed: usize,
    },
    /// A batch point falls outside the bbox the super-triangle was built
    /// from; applying it would diverge from a fresh build. The engine is
    /// left untouched — the caller should rebuild.
    OutsideBounds,
}

/// Incrementally maintained Delaunay triangulation over a growing point
/// prefix, with index-order insertion as the canonical schedule.
#[derive(Debug)]
pub struct DelaunayIncremental {
    mesh: TriMesh,
    /// Bbox of the prefix the super-triangle was derived from.
    bbox: Bbox<2>,
    /// Hint triangle for point-location walks.
    hint: u32,
    /// Set when a batch aborted mid-flight; the mesh is incomplete.
    poisoned: bool,
}

impl DelaunayIncremental {
    /// Builds the engine by inserting `points` in index order (the
    /// canonical schedule batches resume), with the same typed errors as
    /// [`try_delaunay`](crate::try_delaunay).
    pub fn try_build(points: &[Point2]) -> GeoResult<Self> {
        if points.is_empty() {
            return Err(GeoError::EmptyInput { op: "delaunay" });
        }
        if points.len() < 3 {
            return Err(GeoError::TooFewPoints {
                op: "delaunay",
                needed: 3,
                got: points.len(),
            });
        }
        let mut bbox = Bbox::empty();
        for p in points {
            bbox.extend(p);
        }
        let mut eng = DelaunayIncremental {
            mesh: TriMesh::new(points),
            bbox,
            hint: 0,
            poisoned: false,
        };
        // Conflict-list insertion (as in `delaunay_seq`) in index order:
        // every uninserted point tracks one triangle containing it, so no
        // location walks are needed during the build.
        let n = points.len();
        let mut tri_of: Vec<u32> = vec![0; n];
        eng.mesh.tris[0].pts = (0..n as u32).collect();
        for q in 0..n as u32 {
            let mut t0 = tri_of[q as usize];
            if !eng.mesh.tris[t0 as usize].alive {
                // Redistribution keeps `tri_of` fresh; this is a defensive
                // re-location, never expected to run.
                match eng.locate(q) {
                    Some(t) => t0 = t,
                    None => continue,
                }
            }
            if eng.mesh.is_vertex_of(t0, q) {
                continue; // duplicate point collapses onto the first copy
            }
            let region = eng.mesh.conflict_region(t0, q);
            let new_tris = eng.mesh.insert_vertex(q, &region);
            eng.hint = *new_tris.last().expect("cavity produces triangles");
            for &dead in &region {
                let pts = std::mem::take(&mut eng.mesh.tris[dead as usize].pts);
                for t in pts {
                    if t == q {
                        continue;
                    }
                    if let Some(&nt) = new_tris.iter().find(|&&nt| eng.mesh.contains(nt, t)) {
                        tri_of[t as usize] = nt;
                        eng.mesh.tris[nt as usize].pts.push(t);
                    }
                }
            }
        }
        // Drop leftover conflict lists (uninserted duplicates); batch
        // appends locate by walking instead.
        for t in &mut eng.mesh.tris {
            t.pts = Vec::new();
        }
        if eng.mesh.extract().is_empty() {
            return Err(GeoError::Degenerate {
                op: "delaunay",
                what: "collinear",
            });
        }
        Ok(eng)
    }

    /// Length of the consumed prefix.
    pub fn consumed(&self) -> usize {
        self.mesh.super_base as usize
    }

    /// Appends `new_pts` (the points after the consumed prefix, in index
    /// order) to the triangulation.
    ///
    /// Returns [`DelaunayBatchOutcome::DamageExceeded`] — poisoning the
    /// engine — once more than `max_damage · (alive triangles at batch
    /// start + 3 · batch size)` triangles have been killed.
    pub fn try_insert_batch(
        &mut self,
        new_pts: &[Point2],
        max_damage: f64,
    ) -> GeoResult<DelaunayBatchOutcome> {
        if self.poisoned {
            return Err(GeoError::BadParameter {
                op: "delaunay_insert_batch",
                what: "engine poisoned by an aborted batch; rebuild required",
            });
        }
        if new_pts.iter().any(|p| !self.bbox.contains(p)) {
            return Ok(DelaunayBatchOutcome::OutsideBounds);
        }
        let budget = max_damage * (self.mesh.alive_count + 3 * new_pts.len()) as f64;
        let first = self.mesh.super_base;
        self.mesh.append_points(new_pts);
        if self.hint >= self.mesh.tris.len() as u32 {
            self.hint = 0;
        }
        let mut inserted = 0usize;
        let mut killed = 0usize;
        for q in first..first + new_pts.len() as u32 {
            match self.insert_one(q) {
                Some(k) => {
                    killed += k;
                    if k > 0 {
                        inserted += 1;
                    }
                }
                None => {
                    // Locate failed: the mesh no longer encloses q. Treat
                    // like an out-of-bounds point, but the mesh already
                    // holds part of the batch — poison it.
                    self.poisoned = true;
                    return Ok(DelaunayBatchOutcome::OutsideBounds);
                }
            }
            if killed as f64 > budget {
                self.poisoned = true;
                return Ok(DelaunayBatchOutcome::DamageExceeded { killed });
            }
        }
        Ok(DelaunayBatchOutcome::Applied { inserted, killed })
    }

    /// Inserts point `q`, returning the number of triangles its cavity
    /// killed (0 for a duplicate), or `None` if no triangle contains `q`.
    fn insert_one(&mut self, q: u32) -> Option<usize> {
        let t0 = self.locate(q)?;
        if self.mesh.is_vertex_of(t0, q) {
            return Some(0); // duplicate point collapses onto the first copy
        }
        let region = self.mesh.conflict_region(t0, q);
        let killed = region.len();
        let new_tris = self.mesh.insert_vertex(q, &region);
        self.hint = *new_tris.last().expect("cavity produces triangles");
        Some(killed)
    }

    /// Orientation walk from the hint triangle, with a step cap and an
    /// exhaustive-scan fallback so location terminates on any mesh (walks
    /// can cycle on degenerate inputs).
    fn locate(&mut self, q: u32) -> Option<u32> {
        let tris = &self.mesh.tris;
        let mut t = self.hint;
        if !tris[t as usize].alive {
            t = tris.iter().position(|t| t.alive)? as u32;
        }
        let cap = tris.len();
        let mut steps = 0usize;
        'walk: while steps < cap {
            let tri = &tris[t as usize];
            for i in 0..3 {
                let a = &self.mesh.points[tri.v[i] as usize];
                let b = &self.mesh.points[tri.v[(i + 1) % 3] as usize];
                if orient2d(a, b, &self.mesh.points[q as usize]) == Orientation::Negative {
                    let g = tri.nbr[i];
                    if g == u32::MAX {
                        break 'walk; // outside the super-triangle
                    }
                    t = g;
                    steps += 1;
                    continue 'walk;
                }
            }
            self.hint = t;
            return Some(t);
        }
        // Fallback: linear scan (degenerate walk cycle or outside hint).
        let found =
            (0..tris.len() as u32).find(|&t| tris[t as usize].alive && self.mesh.contains(t, q));
        if let Some(t) = found {
            self.hint = t;
        }
        found
    }

    /// The triangulation over the consumed prefix (real triangles only).
    pub fn triangulation(&self) -> GeoResult<Delaunay> {
        if self.poisoned {
            return Err(GeoError::BadParameter {
                op: "delaunay_extract",
                what: "engine poisoned by an aborted batch; rebuild required",
            });
        }
        Ok(Delaunay {
            triangles: self.mesh.extract(),
        })
    }

    /// Sorted, deduplicated `(min, max)` edge list — the canonical output
    /// the store compares across incremental and full recomputes.
    pub fn edges(&self) -> GeoResult<Vec<(u32, u32)>> {
        Ok(crate::graphs::delaunay_edges(&self.triangulation()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tri::validate_delaunay;
    use crate::try_delaunay;
    use pargeo_datagen::uniform_cube;

    fn lattice(w: usize) -> Vec<Point2> {
        let mut pts = Vec::new();
        for i in 0..w {
            for j in 0..w {
                pts.push(Point2::new([i as f64, j as f64]));
            }
        }
        pts
    }

    /// Prepends the dataset's bbox corners so every prefix from 4 on has
    /// the full bbox (batch appends must stay inside the built bbox).
    fn with_corner_prefix(pts: Vec<Point2>) -> Vec<Point2> {
        let mut bbox = Bbox::empty();
        for p in &pts {
            bbox.extend(p);
        }
        let (lo, hi) = (bbox.min, bbox.max);
        let mut out = vec![
            Point2::new([lo[0], lo[1]]),
            Point2::new([hi[0], lo[1]]),
            Point2::new([hi[0], hi[1]]),
            Point2::new([lo[0], hi[1]]),
        ];
        out.extend(pts);
        out
    }

    /// Batched insertion must stay edge-identical to a fresh index-order
    /// build on every prefix — including a maximally cocircular lattice,
    /// where the triangulation is not unique and only the fixed insertion
    /// schedule pins the answer.
    #[test]
    fn batches_match_full_build_bit_identically() {
        for (name, mut pts) in [
            ("uniform", with_corner_prefix(uniform_cube::<2>(500, 5))),
            ("lattice", with_corner_prefix(lattice(14))),
        ] {
            // Duplicate-heavy tail, kept inside the prefix bbox.
            let dups: Vec<Point2> = pts.iter().step_by(3).copied().collect();
            pts.extend(dups);
            let mut eng = DelaunayIncremental::try_build(&pts[..64]).unwrap();
            let mut at = 64;
            for step in [1usize, 5, 23, 64, 150] {
                let to = (at + step).min(pts.len());
                match eng.try_insert_batch(&pts[at..to], 1.0).unwrap() {
                    DelaunayBatchOutcome::Applied { .. } => {}
                    other => panic!("{name}: unexpected outcome {other:?}"),
                }
                at = to;
                let fresh = DelaunayIncremental::try_build(&pts[..to]).unwrap();
                assert_eq!(eng.edges().unwrap(), fresh.edges().unwrap(), "{name}@{to}");
            }
            validate_delaunay(&pts[..at], &eng.triangulation().unwrap().triangles).unwrap();
        }
    }

    /// The index-order build is a valid Delaunay triangulation and agrees
    /// with the randomized builders on the edge set for inputs in general
    /// position (where the triangulation is unique).
    #[test]
    fn index_order_build_matches_randomized_in_general_position() {
        let pts = uniform_cube::<2>(400, 9);
        let eng = DelaunayIncremental::try_build(&pts).unwrap();
        validate_delaunay(&pts, &eng.triangulation().unwrap().triangles).unwrap();
        let rand = try_delaunay(&pts).unwrap();
        assert_eq!(eng.edges().unwrap(), crate::delaunay_edges(&rand));
    }

    /// Same typed errors as `try_delaunay` on degenerate inputs.
    #[test]
    fn degenerate_inputs_error_like_try_delaunay() {
        assert_eq!(
            DelaunayIncremental::try_build(&[]).err(),
            Some(GeoError::EmptyInput { op: "delaunay" })
        );
        let two = [Point2::new([0.0, 0.0]), Point2::new([1.0, 0.0])];
        assert_eq!(
            DelaunayIncremental::try_build(&two).err(),
            Some(GeoError::TooFewPoints {
                op: "delaunay",
                needed: 3,
                got: 2
            })
        );
        let line: Vec<Point2> = (0..30).map(|i| Point2::new([i as f64, i as f64])).collect();
        assert_eq!(
            DelaunayIncremental::try_build(&line).err(),
            Some(GeoError::Degenerate {
                op: "delaunay",
                what: "collinear"
            })
        );
        let dup = [Point2::new([1.0, 1.0]); 7];
        assert_eq!(
            DelaunayIncremental::try_build(&dup).err(),
            Some(GeoError::Degenerate {
                op: "delaunay",
                what: "collinear"
            })
        );
    }

    /// Points outside the built prefix's bbox must be refused without
    /// corrupting the engine.
    #[test]
    fn outside_bbox_is_refused_and_engine_survives() {
        let pts = uniform_cube::<2>(200, 3);
        let mut eng = DelaunayIncremental::try_build(&pts).unwrap();
        let edges_before = eng.edges().unwrap();
        let far = [Point2::new([1e9, 1e9])];
        assert_eq!(
            eng.try_insert_batch(&far, 1.0).unwrap(),
            DelaunayBatchOutcome::OutsideBounds
        );
        assert_eq!(eng.edges().unwrap(), edges_before);
        assert_eq!(eng.consumed(), 200);
    }

    /// A zero damage budget aborts on the first cavity and poisons the
    /// engine.
    #[test]
    fn damage_threshold_aborts_and_poisons() {
        let pts = with_corner_prefix(uniform_cube::<2>(300, 7));
        let mut eng = DelaunayIncremental::try_build(&pts[..200]).unwrap();
        match eng.try_insert_batch(&pts[200..], 0.0).unwrap() {
            DelaunayBatchOutcome::DamageExceeded { killed } => assert!(killed > 0),
            other => panic!("expected abort, got {other:?}"),
        }
        assert!(eng.try_insert_batch(&pts[200..], 1.0).is_err());
        assert!(eng.edges().is_err());
    }
}
