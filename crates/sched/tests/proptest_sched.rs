//! Property and stress tests for the work-stealing pool (ISSUE 9,
//! satellite 3).
//!
//! Three families:
//! 1. Panic-safety properties: join/scope panics propagate to the caller
//!    with the right priority and never poison the pool.
//! 2. Determinism properties: seed-shaped random fork-join DAGs reduce to
//!    bit-identical digests at worker counts {1, 2, 4} — the
//!    digest-invisibility argument of DESIGN.md §2.8 as an executable
//!    check (split shape depends only on the seed, never on who runs
//!    what).
//! 3. A loom-style bounded stress loop on the Chase–Lev deque's pop/steal
//!    race, without a loom dependency: one owner and several thieves
//!    hammer a raw deque with sentinel jobs and we assert exactly-once
//!    delivery of every tag.

use pargeo_sched::deque::{Deque, JobRef, Steal};
use pargeo_sched::{join, scope, Pool, PoolBuilder};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Worker counts every determinism property runs at. 1 is the sequential
/// anchor; 2 and 4 oversubscribe the container so steals actually happen.
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn pool(n: usize) -> Pool {
    PoolBuilder::new()
        .num_threads(n)
        // Tiny fixed grain so small proptest inputs still split and the
        // schedule actually varies; determinism must hold regardless.
        .grain(4)
        .build()
        .expect("pool")
}

// ---------------------------------------------------------------------------
// 1. Panic safety
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever combination of join sides panics, the panic reaches the
    /// caller (left side's payload wins when both do) and the pool keeps
    /// answering afterwards.
    #[test]
    fn join_panics_propagate_and_pool_survives(
        workers in (0usize..3).prop_map(|i| WORKER_COUNTS[i]),
        panic_a in (0u8..2).prop_map(|b| b == 1),
        panic_b in (0u8..2).prop_map(|b| b == 1),
    ) {
        let p = pool(workers);
        let r = catch_unwind(AssertUnwindSafe(|| {
            p.install(|| {
                join(
                    || { if panic_a { panic!("left payload") } 1u32 },
                    || { if panic_b { panic!("right payload") } 2u32 },
                )
            })
        }));
        match r {
            Ok((a, b)) => {
                prop_assert!(!panic_a && !panic_b);
                prop_assert_eq!((a, b), (1, 2));
            }
            Err(payload) => {
                prop_assert!(panic_a || panic_b);
                let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
                if panic_a {
                    prop_assert_eq!(msg, "left payload");
                } else {
                    prop_assert_eq!(msg, "right payload");
                }
            }
        }
        // The pool is not poisoned: it still runs real work.
        let sum = p.install(|| join(|| 20u64, || 22u64));
        prop_assert_eq!(sum.0 + sum.1, 42);
    }

    /// A scope waits for every spawned task even when one of them (or the
    /// scope body itself) panics, and the panic propagates. Tasks that
    /// don't panic all run exactly once.
    #[test]
    fn scope_panic_still_waits_for_all_tasks(
        workers in (0usize..3).prop_map(|i| WORKER_COUNTS[i]),
        tasks in 1usize..24,
        panicking in 0usize..24,
    ) {
        let p = pool(workers);
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = ran.clone();
        let bad = panicking % tasks;
        let r = catch_unwind(AssertUnwindSafe(|| {
            p.install(|| {
                scope(|s| {
                    for i in 0..tasks {
                        let ran = ran2.clone();
                        s.spawn(move |_| {
                            if i == bad {
                                panic!("task panic");
                            }
                            ran.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            })
        }));
        prop_assert!(r.is_err(), "one task always panics");
        // The scope blocked until every sibling finished.
        prop_assert_eq!(ran.load(Ordering::SeqCst), tasks - 1);
        // Pool unharmed.
        prop_assert_eq!(p.install(|| 7u8), 7);
    }

    /// Pools nest: installing into an inner pool from an outer pool's
    /// worker migrates correctly in both directions, at any size combo.
    #[test]
    fn nested_pools_compose(
        outer in (0usize..3).prop_map(|i| WORKER_COUNTS[i]),
        inner in (0usize..3).prop_map(|i| WORKER_COUNTS[i]),
        n in 1usize..256,
    ) {
        let po = pool(outer);
        let pi = pool(inner);
        let data: Vec<u64> = (0..n as u64).collect();
        let expect: u64 = data.iter().sum();
        let got = po.install(|| {
            let (outer_half, inner_half) = join(
                || data[..n / 2].iter().sum::<u64>(),
                || pi.install(|| data[n / 2..].iter().sum::<u64>()),
            );
            outer_half + inner_half
        });
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------------
// 2. Determinism: random fork-join DAGs
// ---------------------------------------------------------------------------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Reduces `data` through a randomly shaped fork-join tree: the split
/// point, the leaf threshold, and the combining op at each node all come
/// from `seed` — never from the scheduler — so any execution schedule
/// must produce the same bits.
fn dag_reduce(data: &[u64], mut seed: u64, depth: u32) -> u64 {
    let r = splitmix(&mut seed);
    if depth == 0 || data.len() <= 1 + (r % 4) as usize {
        return data
            .iter()
            .fold(r, |acc, &x| acc.rotate_left(7) ^ x.wrapping_mul(0x100_0193));
    }
    let at = 1 + (r as usize) % (data.len() - 1).max(1);
    let at = at.min(data.len() - 1);
    let (l, r_slice) = data.split_at(at);
    let (a, b) = join(
        || dag_reduce(l, seed ^ 0xa5a5, depth - 1),
        || dag_reduce(r_slice, seed ^ 0x5a5a, depth - 1),
    );
    match seed % 3 {
        0 => a.wrapping_mul(3).wrapping_add(b),
        1 => a ^ b.rotate_left(13),
        _ => a.wrapping_add(b).rotate_left(3),
    }
}

/// Same idea through `scope`: tasks write into disjoint slots, the digest
/// folds the slot vector in index order afterwards.
fn scope_digest(data: &[u64], chunk: usize) -> u64 {
    let chunks: Vec<&[u64]> = data.chunks(chunk.max(1)).collect();
    let mut out = vec![0u64; chunks.len()];
    scope(|s| {
        for (slot, c) in out.iter_mut().zip(chunks) {
            s.spawn(move |_| {
                *slot = c.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &x| {
                    (h ^ x).wrapping_mul(0x100_0000_01b3)
                });
            });
        }
    });
    out.iter()
        .fold(0u64, |h, &x| h.rotate_left(11).wrapping_add(x))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same seed-shaped DAG reduces to identical bits at 1, 2 and 4
    /// workers — scheduling is digest-invisible.
    #[test]
    fn random_dags_are_bit_identical_across_worker_counts(
        seed in 0u64..u64::MAX,
        data in prop::collection::vec(0u64..u64::MAX, 1..512),
        depth in 1u32..8,
    ) {
        let mut digests = Vec::new();
        for &w in &WORKER_COUNTS {
            let p = pool(w);
            digests.push(p.install(|| dag_reduce(&data, seed, depth)));
        }
        prop_assert_eq!(digests[0], digests[1]);
        prop_assert_eq!(digests[0], digests[2]);
    }

    /// Scope-spawned fan-out is digest-invisible too: disjoint-slot
    /// writes folded in index order match at every worker count.
    #[test]
    fn scope_fanout_is_bit_identical_across_worker_counts(
        data in prop::collection::vec(0u64..u64::MAX, 1..512),
        chunk in 1usize..64,
    ) {
        let mut digests = Vec::new();
        for &w in &WORKER_COUNTS {
            let p = pool(w);
            digests.push(p.install(|| scope_digest(&data, chunk)));
        }
        prop_assert_eq!(digests[0], digests[1]);
        prop_assert_eq!(digests[0], digests[2]);
    }
}

// ---------------------------------------------------------------------------
// 3. Bounded deque stress (loom-style, no loom)
// ---------------------------------------------------------------------------

/// One owner pushes tagged sentinels and randomly pops; `thieves` threads
/// steal concurrently. Every tag must be delivered exactly once across
/// owner pops and steals — the pop/steal last-element race must never
/// duplicate or drop a job. Bounded iterations keep it deterministic in
/// runtime, and the small deque capacity start (the `Deque` grows from 64)
/// plus tag counts > 64 force buffer growth races too.
fn deque_stress(items: usize, thieves: usize, seed: u64) {
    let deque = Arc::new(Deque::new());
    let done = Arc::new(AtomicBool::new(false));
    let stolen: Vec<_> = (0..thieves)
        .map(|_| Arc::new(std::sync::Mutex::new(Vec::<usize>::new())))
        .collect();

    let handles: Vec<_> = stolen
        .iter()
        .map(|bag| {
            let deque = deque.clone();
            let done = done.clone();
            let bag = bag.clone();
            std::thread::spawn(move || loop {
                match deque.steal() {
                    Steal::Success(job) => bag.lock().unwrap().push(job.tag()),
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            return;
                        }
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    let mut owned = Vec::new();
    let mut rng = seed | 1;
    for tag in 0..items {
        deque.push(JobRef::sentinel(tag));
        // Randomly interleave pops so bottom crosses top often (the racy
        // last-element CAS path).
        if splitmix(&mut rng).is_multiple_of(3) {
            if let Some(job) = deque.pop() {
                owned.push(job.tag());
            }
        }
    }
    while let Some(job) = deque.pop() {
        owned.push(job.tag());
    }
    done.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }

    let mut all = owned;
    for bag in &stolen {
        all.extend(bag.lock().unwrap().iter().copied());
    }
    assert_eq!(all.len(), items, "every job delivered exactly once");
    all.sort_unstable();
    for (i, &tag) in all.iter().enumerate() {
        assert_eq!(tag, i, "no duplicated or dropped tags");
    }
}

proptest! {
    // Few cases, many iterations per case: the race window is tiny, so
    // volume inside one schedule matters more than schedule count. The CI
    // stress job cranks PROPTEST_CASES up.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn deque_pop_steal_race_delivers_exactly_once(
        seed in 0u64..u64::MAX,
        thieves in 1usize..4,
    ) {
        deque_stress(10_000, thieves, seed);
    }
}

/// A plain (non-proptest) smoke version so `cargo test` exercises the
/// stress loop even when proptest filtering is active.
#[test]
fn deque_stress_smoke() {
    deque_stress(5_000, 2, 0x1234_5678);
}
