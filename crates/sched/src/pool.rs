//! The pool: persistent workers, the injector, parking, and calibration.
//!
//! Each [`Pool`] owns `n` OS threads. A worker looks for work in a fixed
//! order — own deque (LIFO), global injector (FIFO), steal from a random
//! victim (FIFO) — and when all three come up empty it parks on the
//! pool's condvar with an exponentially growing timeout (spin/yield
//! rounds first, then 50µs doubling to 3.2ms). Publishers (pushes,
//! injections, completed jobs) notify the condvar only when the sleeper
//! count is nonzero, so the notify cost is a fence + relaxed load on the
//! hot path. The `SeqCst` fences on both sides of the sleep registration
//! close the lost-wakeup race: either the publisher sees the sleeper and
//! notifies, or the sleeper's post-registration re-check sees the work.
//!
//! External submission ([`Pool::install`]) migrates the closure *onto* a
//! worker via a stack job in the injector — the rayon model — so
//! everything below the entry point (joins, scopes, iterator splits)
//! runs on pool threads with cheap deque pushes, never OS spawns.

use crate::job::{JobRef, JobResult, StackJob};
use crate::latch::LockLatch;
use crate::metrics::{SchedObs, SchedStats};
use pargeo_obs::Registry;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Error building a [`Pool`] or configuring the global one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// Spawning a worker OS thread failed.
    Spawn,
    /// [`configure_global`](crate::configure_global) ran after the global
    /// pool was already initialized (explicitly or by parallel work).
    GlobalAlreadyInitialized,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Spawn => f.write_str("failed to spawn scheduler worker thread"),
            BuildError::GlobalAlreadyInitialized => {
                f.write_str("global scheduler pool already initialized")
            }
        }
    }
}

impl std::error::Error for BuildError {}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Per-worker counters, cache-line padded: always on (relaxed atomics),
/// independent of whether a registry is attached.
#[repr(align(64))]
pub(crate) struct PerWorker {
    pub(crate) tasks: AtomicU64,
    pub(crate) steals: AtomicU64,
    pub(crate) parks: AtomicU64,
}

impl PerWorker {
    fn new() -> Self {
        PerWorker {
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        }
    }
}

/// Sleep/wake state shared by all of a pool's workers.
struct Sleep {
    lock: Mutex<()>,
    cv: Condvar,
    sleepers: AtomicUsize,
}

pub(crate) struct PoolState {
    n: usize,
    deques: Vec<crate::deque::Deque>,
    injector: Mutex<VecDeque<JobRef>>,
    /// Mirror of the injector length, readable without its lock (both to
    /// skip the lock when empty and to avoid lock-order cycles from the
    /// sleep path).
    injector_len: AtomicUsize,
    sleep: Sleep,
    terminate: AtomicBool,
    /// Sequential-threshold (items per leaf) for the iterator layer;
    /// lazily calibrated, or preset via `PARGEO_GRAIN` / the builder.
    grain: OnceLock<usize>,
    /// Registry-backed metric handles, if a registry was attached.
    obs: OnceLock<SchedObs>,
    counters: Vec<PerWorker>,
}

impl PoolState {
    /// FIFO submission from outside the pool (or cross-pool).
    pub(crate) fn inject(&self, job: JobRef) {
        {
            let mut q = lock(&self.injector);
            q.push_back(job);
            self.injector_len.store(q.len(), Ordering::Release);
            if let Some(o) = self.obs.get() {
                o.queue_depth.set(q.len() as i64);
            }
        }
        self.notify_sleepers();
    }

    /// Wakes parked workers if any. The fence pairs with the one in
    /// [`Worker::park`]: a publisher that misses the sleeper count is
    /// ordered before the sleeper's work re-check.
    fn notify_sleepers(&self) {
        fence(Ordering::SeqCst);
        if self.sleep.sleepers.load(Ordering::Relaxed) > 0 {
            let _guard = lock(&self.sleep.lock);
            self.sleep.cv.notify_all();
        }
    }

    /// Racy "is anything queued anywhere" check used before sleeping.
    fn has_visible_work(&self) -> bool {
        self.injector_len.load(Ordering::Acquire) > 0 || self.deques.iter().any(|d| !d.is_empty())
    }
}

/// Idle backoff: a few spin/yield rounds, then exponentially longer
/// parks (50µs → 3.2ms).
pub(crate) struct Backoff {
    rounds: u32,
}

impl Backoff {
    const SPIN: u32 = 4;
    const YIELD: u32 = 32;
    const MAX_PARK_SHIFT: u32 = 6;

    pub(crate) fn new() -> Self {
        Backoff { rounds: 0 }
    }

    pub(crate) fn reset(&mut self) {
        self.rounds = 0;
    }

    /// One busy-phase step; `true` while the caller should retry without
    /// sleeping. Yields dominate the busy phase so single-core hosts let
    /// the thread that has the work actually run.
    fn spin(&mut self) -> bool {
        if self.rounds < Self::YIELD {
            if self.rounds < Self::SPIN {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            self.rounds += 1;
            true
        } else {
            false
        }
    }

    fn park_duration(&mut self) -> Duration {
        let shift = (self.rounds - Self::YIELD).min(Self::MAX_PARK_SHIFT);
        self.rounds = self.rounds.saturating_add(1);
        Duration::from_micros(50u64 << shift)
    }
}

thread_local! {
    static WORKER: Cell<*const Worker> = const { Cell::new(std::ptr::null()) };
}

/// Runs `f` with the calling thread's worker context, if it is a pool
/// worker thread.
pub(crate) fn with_worker<R>(f: impl FnOnce(Option<&Worker>) -> R) -> R {
    let ptr = WORKER.with(|c| c.get());
    // SAFETY: the pointer is set by worker_main to a stack slot that
    // outlives everything the worker runs, and only ever dereferenced on
    // that same thread.
    f(unsafe { ptr.as_ref() })
}

/// `(pool address, worker index)` of the calling thread, if a worker.
pub(crate) fn current_worker_id() -> Option<(usize, usize)> {
    with_worker(|w| w.map(Worker::id))
}

/// Per-thread worker context, owned by the worker's main-loop stack.
pub(crate) struct Worker {
    state: Arc<PoolState>,
    index: usize,
    rng: Cell<u64>,
}

impl Worker {
    pub(crate) fn id(&self) -> (usize, usize) {
        (Arc::as_ptr(&self.state) as usize, self.index)
    }

    pub(crate) fn pool_size(&self) -> usize {
        self.state.n
    }

    pub(crate) fn state_arc(&self) -> Arc<PoolState> {
        self.state.clone()
    }

    pub(crate) fn in_pool(&self, state: &Arc<PoolState>) -> bool {
        Arc::ptr_eq(&self.state, state)
    }

    /// The iterator-layer grain for this worker's pool (calibrating on
    /// first use).
    pub(crate) fn grain(&self) -> usize {
        *self
            .state
            .grain
            .get_or_init(|| grain_from_env().unwrap_or_else(calibrate_grain))
    }

    /// Pushes onto the own deque (LIFO end) and wakes a thief if parked.
    pub(crate) fn push(&self, job: JobRef) {
        self.state.deques[self.index].push(job);
        self.state.notify_sleepers();
    }

    pub(crate) fn pop(&self) -> Option<JobRef> {
        self.state.deques[self.index].pop()
    }

    fn pop_injected(&self) -> Option<JobRef> {
        if self.state.injector_len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = lock(&self.state.injector);
        let job = q.pop_front();
        self.state.injector_len.store(q.len(), Ordering::Release);
        if let Some(o) = self.state.obs.get() {
            o.queue_depth.set(q.len() as i64);
        }
        job
    }

    fn try_steal(&self) -> Option<JobRef> {
        let n = self.state.n;
        if n <= 1 {
            return None;
        }
        let start = self.next_rand() as usize % n;
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == self.index {
                continue;
            }
            loop {
                match self.state.deques[victim].steal() {
                    crate::deque::Steal::Success(job) => {
                        self.state.counters[self.index]
                            .steals
                            .fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = self.state.obs.get() {
                            o.steals.inc();
                        }
                        return Some(job);
                    }
                    crate::deque::Steal::Retry => std::hint::spin_loop(),
                    crate::deque::Steal::Empty => break,
                }
            }
        }
        None
    }

    fn find_work(&self) -> Option<JobRef> {
        self.pop()
            .or_else(|| self.pop_injected())
            .or_else(|| self.try_steal())
    }

    /// Runs one job, counting it and waking any waiter that may be parked
    /// on its completion.
    pub(crate) fn execute_job(&self, job: JobRef) {
        self.state.counters[self.index]
            .tasks
            .fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.state.obs.get() {
            o.tasks.inc();
            o.per_worker[self.index].inc();
        }
        // SAFETY: every queued JobRef is alive until executed (stack jobs
        // are pinned by their blocked spawner, heap jobs are owned).
        unsafe { job.execute() };
        self.state.notify_sleepers();
    }

    /// Works (executing anything available) until `done()`, parking with
    /// backoff when idle. The latch-wait primitive under `join` and
    /// `scope`.
    pub(crate) fn wait_until(&self, done: &dyn Fn() -> bool) {
        let mut backoff = Backoff::new();
        loop {
            if done() {
                return;
            }
            if let Some(job) = self.find_work() {
                self.execute_job(job);
                backoff.reset();
                continue;
            }
            self.park(&mut backoff, done);
        }
    }

    /// One idle step: spin/yield first, then register as a sleeper and
    /// block on the pool condvar (bounded timeout).
    fn park(&self, backoff: &mut Backoff, done: &dyn Fn() -> bool) {
        if backoff.spin() {
            return;
        }
        let sleep = &self.state.sleep;
        let guard = lock(&sleep.lock);
        sleep.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if done() || self.state.has_visible_work() || self.state.terminate.load(Ordering::Acquire) {
            sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.state.counters[self.index]
            .parks
            .fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.state.obs.get() {
            o.parks.inc();
        }
        let _ = sleep
            .cv
            .wait_timeout(guard, backoff.park_duration())
            .unwrap_or_else(|e| e.into_inner());
        sleep.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    fn next_rand(&self) -> u64 {
        // xorshift64*; seeded per worker, used only for victim selection.
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        x
    }
}

fn worker_main(state: Arc<PoolState>, index: usize) {
    let worker = Worker {
        state,
        index,
        rng: Cell::new(0x9E37_79B9_7F4A_7C15 ^ ((index as u64) << 1 | 1)),
    };
    WORKER.with(|c| c.set(&worker as *const Worker));
    let mut backoff = Backoff::new();
    loop {
        if let Some(job) = worker.find_work() {
            worker.execute_job(job);
            backoff.reset();
            continue;
        }
        // Drain-before-exit: terminate is only honored once no work is
        // reachable, so queued jobs finish before the pool drops.
        if worker.state.terminate.load(Ordering::Acquire) {
            break;
        }
        worker.park(&mut backoff, &|| false);
    }
    WORKER.with(|c| c.set(std::ptr::null()));
}

/// Builder for a [`Pool`].
#[derive(Default)]
pub struct PoolBuilder {
    num_threads: Option<usize>,
    grain: Option<usize>,
}

impl PoolBuilder {
    /// An empty builder (machine-default worker count, calibrated grain).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (`0` means the machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = (n != 0).then_some(n);
        self
    }

    /// Pins the iterator-layer grain, skipping calibration (testing knob;
    /// `PARGEO_GRAIN` still wins for un-pinned pools).
    pub fn grain(mut self, items: usize) -> Self {
        self.grain = (items != 0).then_some(items);
        self
    }

    /// Spawns the workers.
    pub fn build(self) -> Result<Pool, BuildError> {
        let n = self.num_threads.unwrap_or_else(default_threads).max(1);
        let state = Arc::new(PoolState {
            n,
            deques: (0..n).map(|_| crate::deque::Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            injector_len: AtomicUsize::new(0),
            sleep: Sleep {
                lock: Mutex::new(()),
                cv: Condvar::new(),
                sleepers: AtomicUsize::new(0),
            },
            terminate: AtomicBool::new(false),
            grain: OnceLock::new(),
            obs: OnceLock::new(),
            counters: (0..n).map(|_| PerWorker::new()).collect(),
        });
        if let Some(g) = self.grain {
            let _ = state.grain.set(g);
        }
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let st = state.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("pargeo-sched-{i}"))
                .spawn(move || worker_main(st, i));
            match spawned {
                Ok(h) => handles.push(h),
                Err(_) => {
                    // Tear down the partially spawned pool before failing.
                    state.terminate.store(true, Ordering::SeqCst);
                    {
                        let _guard = lock(&state.sleep.lock);
                        state.sleep.cv.notify_all();
                    }
                    for h in handles {
                        let _ = h.join();
                    }
                    return Err(BuildError::Spawn);
                }
            }
        }
        Ok(Pool { state, handles })
    }
}

/// A persistent work-stealing thread pool.
///
/// Dropping the pool drains all queued work, then joins the workers.
pub struct Pool {
    state: Arc<PoolState>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// A pool with `n` workers (`0` means the machine default). Panics if
    /// worker threads cannot be spawned; use [`PoolBuilder`] for the
    /// fallible path.
    pub fn new(n: usize) -> Pool {
        PoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("spawn scheduler workers")
    }

    /// Number of workers.
    pub fn num_threads(&self) -> usize {
        self.state.n
    }

    /// Runs `op` on a pool worker, blocking until it completes. Panics in
    /// `op` resurface here (on the caller), never poisoning the pool.
    ///
    /// Called from a worker of this same pool, `op` runs inline (the
    /// rayon re-entrancy contract). Called from anywhere else — an
    /// external thread or another pool's worker — `op` migrates through
    /// the injector, so *everything* beneath it executes on this pool.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let inline = with_worker(|w| matches!(w, Some(w) if w.in_pool(&self.state)));
        if inline {
            return op();
        }
        let job = StackJob::new(LockLatch::new(), |_migrated| op(), None);
        // SAFETY: this frame blocks on the latch until the job ran.
        let job_ref = unsafe { job.as_job_ref() };
        self.state.inject(job_ref);
        job.latch.wait();
        match unsafe { job.take_result() } {
            JobResult::Ok(r) => r,
            JobResult::Panicked(payload) => panic::resume_unwind(payload),
            JobResult::None => unreachable!("install job signalled without a result"),
        }
    }

    /// The iterator-layer grain (items per sequential leaf) for this
    /// pool: `PARGEO_GRAIN` if set, a builder override, or a one-time
    /// calibration of task-spawn overhead against per-item work.
    pub fn grain(&self) -> usize {
        *self
            .state
            .grain
            .get_or_init(|| grain_from_env().unwrap_or_else(|| self.install(calibrate_grain)))
    }

    /// Registers this pool's metrics against `registry` (first attach
    /// wins): `sched_tasks_total`, `sched_steals_total`,
    /// `sched_parks_total`, `sched_queue_depth`, and per-worker
    /// `sched_worker_tasks_total{worker=..}`. Registry counters meter
    /// from the moment of attachment; [`Pool::stats`] always covers the
    /// pool's full lifetime.
    pub fn attach_registry(&self, registry: &Arc<Registry>) {
        let _ = self.state.obs.set(SchedObs::new(registry, self.state.n));
    }

    /// Lifetime counters from the always-on per-worker atomics.
    pub fn stats(&self) -> SchedStats {
        let per_worker_tasks: Vec<u64> = self
            .state
            .counters
            .iter()
            .map(|c| c.tasks.load(Ordering::Relaxed))
            .collect();
        SchedStats {
            workers: self.state.n,
            tasks_total: per_worker_tasks.iter().sum(),
            steals_total: self
                .state
                .counters
                .iter()
                .map(|c| c.steals.load(Ordering::Relaxed))
                .sum(),
            parks_total: self
                .state
                .counters
                .iter()
                .map(|c| c.parks.load(Ordering::Relaxed))
                .sum(),
            per_worker_tasks,
            injector_depth: self.state.injector_len.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn state(&self) -> &Arc<PoolState> {
        &self.state
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.state.terminate.store(true, Ordering::SeqCst);
        {
            let _guard = lock(&self.state.sleep.lock);
            self.state.sleep.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool, created on first use at the machine default
/// size (or the size passed to [`configure_global`](crate::configure_global)).
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(default_threads()))
}

/// Sizes the global pool explicitly. Fails if it was already initialized
/// (explicitly, or implicitly by parallel work that already ran).
pub fn configure_global(num_threads: usize) -> Result<(), BuildError> {
    let n = if num_threads == 0 {
        default_threads()
    } else {
        num_threads
    };
    GLOBAL
        .set(Pool::new(n))
        .map_err(|_| BuildError::GlobalAlreadyInitialized)
}

fn grain_from_env() -> Option<usize> {
    let raw = std::env::var("PARGEO_GRAIN").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(v) if v > 0 => Some(v.min(1 << 20)),
        _ => None,
    }
}

/// Measures task-spawn overhead against per-item loop cost and sizes the
/// sequential leaf so one spawn amortizes to roughly an eighth of the
/// leaf's work. Runs on a pool worker (the caller arranges that), so the
/// spawn measurement exercises the real deque path.
fn calibrate_grain() -> usize {
    use std::hint::black_box;
    use std::time::Instant;
    for _ in 0..64 {
        crate::join(|| (), || ());
    }
    let spawns = 512u32;
    let t0 = Instant::now();
    for _ in 0..spawns {
        crate::join(|| black_box(0u64), || black_box(0u64));
    }
    let spawn_ns = t0.elapsed().as_nanos() as f64 / f64::from(spawns);
    let iters = 1u64 << 16;
    let t1 = Instant::now();
    let mut acc = 0u64;
    for i in 0..iters {
        acc = acc
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(black_box(i));
    }
    black_box(acc);
    let item_ns = (t1.elapsed().as_nanos() as f64 / iters as f64).max(0.05);
    ((8.0 * spawn_ns / item_ns) as usize).clamp(256, 16_384)
}
