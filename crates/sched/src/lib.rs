//! `pargeo-sched`: a persistent work-stealing scheduler.
//!
//! This is the runtime under the workspace's rayon shim (and therefore
//! under parlay, the engines, and the store executor): per-worker
//! [Chase–Lev deques](deque) with owner-LIFO push/pop and thief-FIFO
//! steal, a global injector for external submission, exponential-backoff
//! parking for idle workers, and panic-safe [`join`]/[`scope`]/[`spawn`]
//! primitives that propagate payloads to the waiting caller without ever
//! poisoning the pool. See DESIGN.md §2.8 for the architecture and the
//! digest-invisibility argument.
//!
//! # Execution model
//!
//! Work enters a pool through [`Pool::install`] (or the global-pool
//! fallbacks of the free functions): the closure migrates onto a worker
//! thread, and from there every [`join`] is two deque operations — push
//! the second closure, run the first, pop the second back (or, if a
//! thief took it, help with other work until its latch trips). `join`
//! running on `b` before `a` never happens; `b` stolen and run
//! concurrently is the *only* source of parallelism, which is what makes
//! the scheduling schedule-invisible to deterministic reductions.
//!
//! # Determinism
//!
//! The scheduler never reorders a reduction tree — it only chooses
//! *where* each subtree runs. Any caller whose merge step is
//! shape-independent (all of this workspace's digest-checked reductions
//! are) gets bit-identical results at any worker count and any stealing
//! schedule.

#![warn(missing_docs)]

pub mod deque;
mod job;
mod latch;
mod metrics;
mod pool;

pub use metrics::SchedStats;
pub use pool::{configure_global, global, BuildError, Pool, PoolBuilder};

use job::{HeapJob, JobResult, StackJob};
use latch::SpinLatch;
use pool::{with_worker, Worker};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of workers in the calling thread's pool (the global pool's
/// size when called from outside any pool).
pub fn current_num_threads() -> usize {
    with_worker(|w| w.map(Worker::pool_size)).unwrap_or_else(|| global().num_threads())
}

/// The iterator-layer sequential threshold (items per leaf) of the
/// calling thread's pool; calibrates on first use.
pub fn current_grain() -> usize {
    with_worker(|w| w.map(Worker::grain)).unwrap_or_else(|| global().grain())
}

/// Context passed to [`join_context`] closures.
#[derive(Debug, Clone, Copy)]
pub struct JoinContext {
    migrated: bool,
}

impl JoinContext {
    /// `true` iff this closure was stolen — it runs on a different worker
    /// than the one that spawned it (or was injected from outside a
    /// pool). The signal lazy splitters use to re-split.
    pub fn migrated(&self) -> bool {
        self.migrated
    }
}

/// Runs `a` and `b`, potentially in parallel (if an idle worker steals
/// `b`), returning both results. Panics in either closure propagate to
/// the caller after *both* closures finished: `a`'s payload wins if both
/// panicked.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    join_context(|_| a(), |_| b())
}

/// [`join`] whose closures receive a [`JoinContext`] telling them whether
/// they were stolen.
pub fn join_context<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce(JoinContext) -> RA + Send,
    B: FnOnce(JoinContext) -> RB + Send,
    RA: Send,
    RB: Send,
{
    with_worker(|w| match w {
        Some(worker) => join_on(worker, a, b),
        // External thread: migrate the whole join onto the global pool.
        None => global().install(|| join_context(a, b)),
    })
}

fn join_on<A, B, RA, RB>(worker: &Worker, a: A, b: B) -> (RA, RB)
where
    A: FnOnce(JoinContext) -> RA + Send,
    B: FnOnce(JoinContext) -> RB + Send,
    RA: Send,
    RB: Send,
{
    let b_job = StackJob::new(
        SpinLatch::new(),
        move |migrated| b(JoinContext { migrated }),
        Some(worker.id()),
    );
    // SAFETY: this frame outlives the job — it blocks below until the
    // latch is set.
    let b_ref = unsafe { b_job.as_job_ref() };
    worker.push(b_ref);
    let ra = panic::catch_unwind(AssertUnwindSafe(|| a(JoinContext { migrated: false })));
    // Wait for b even if a panicked: b borrows this frame. Prefer popping
    // b back (it is on top unless stolen); a popped job that isn't b
    // belongs to an outer join frame — execute it here, its owner will
    // see the latch.
    loop {
        if b_job.latch.probe() {
            break;
        }
        match worker.pop() {
            Some(job) => {
                let was_b = job == b_ref;
                worker.execute_job(job);
                if was_b {
                    break;
                }
            }
            None => {
                // b was stolen: help with other work until it completes.
                worker.wait_until(&|| b_job.latch.probe());
                break;
            }
        }
    }
    let rb = unsafe { b_job.take_result() };
    let ra = match ra {
        Ok(ra) => ra,
        Err(payload) => panic::resume_unwind(payload),
    };
    match rb {
        JobResult::Ok(rb) => (ra, rb),
        JobResult::Panicked(payload) => panic::resume_unwind(payload),
        JobResult::None => unreachable!("join: b signalled completion without a result"),
    }
}

/// Shared bookkeeping of one [`scope`] invocation.
struct ScopeState {
    pool: Arc<pool::PoolState>,
    /// Outstanding tasks + 1 for the scope body itself.
    pending: AtomicUsize,
    /// First panic payload from a spawned task (later ones are dropped,
    /// matching rayon).
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// A fork-join scope: closures spawned on it may borrow from the
/// enclosing frame (`'scope`), and [`scope`] blocks until all of them
/// completed.
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    // Invariant over 'scope, like rayon's.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `task` into the scope's pool. The task may borrow anything
    /// that outlives the scope and may itself spawn further tasks.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::Relaxed);
        let state = self.state.clone();
        let scope = Scope {
            state: self.state.clone(),
            _marker: PhantomData,
        };
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| task(&scope))) {
                let mut slot = state.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
            // Release: pairs with the owner's acquire load of pending, so
            // task writes into 'scope data happen-before scope() returns.
            state.pending.fetch_sub(1, Ordering::Release);
        });
        // SAFETY: scope_on blocks until pending == 0, so every 'scope
        // borrow in the closure outlives its execution; after the
        // decrement above the closure holds only Arcs.
        let wrapped: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(wrapped) };
        let job = HeapJob::into_job_ref(wrapped);
        with_worker(|w| match w {
            Some(w) if w.in_pool(&self.state.pool) => w.push(job),
            _ => self.state.pool.inject(job),
        });
    }
}

/// Creates a scope on the calling thread's pool (migrating onto the
/// global pool from external threads), runs `op`, and blocks until every
/// task spawned on the scope has completed — executing other pool work
/// while it waits. The first panic (from `op` or any task; `op`'s wins)
/// resumes on the caller after everything finished.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    with_worker(|w| match w {
        Some(worker) => scope_on(worker, op),
        None => global()
            .install(|| with_worker(|w| scope_on(w.expect("install runs on a pool worker"), op))),
    })
}

fn scope_on<'scope, OP, R>(worker: &Worker, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let state = Arc::new(ScopeState {
        pool: worker.state_arc(),
        pending: AtomicUsize::new(1),
        panic: Mutex::new(None),
    });
    let scope = Scope {
        state: state.clone(),
        _marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
    state.pending.fetch_sub(1, Ordering::Release);
    worker.wait_until(&|| state.pending.load(Ordering::Acquire) == 0);
    let task_panic = state.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    match (result, task_panic) {
        (Err(payload), _) => panic::resume_unwind(payload),
        (Ok(_), Some(payload)) => panic::resume_unwind(payload),
        (Ok(r), None) => r,
    }
}

/// Fire-and-forget task on the calling thread's pool (the global pool
/// from external threads). There is no waiter, so a panic payload is
/// dropped after unwinding is contained (use [`scope`] to observe task
/// panics).
pub fn spawn<F>(task: F)
where
    F: FnOnce() + Send + 'static,
{
    let job = HeapJob::into_job_ref(Box::new(task));
    with_worker(|w| match w {
        Some(w) => w.push(job),
        None => global().state().inject(job),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_computes_both_sides() {
        let pool = Pool::new(2);
        let (a, b) = pool.install(|| join(|| 6 * 7, || "ok".to_string()));
        assert_eq!((a, b.as_str()), (42, "ok"));
    }

    #[test]
    fn join_panic_priority_is_a_then_b() {
        let pool = Pool::new(2);
        let caught = pool.install(|| {
            panic::catch_unwind(AssertUnwindSafe(|| {
                join(|| panic!("from a"), || panic!("from b"))
            }))
        });
        let payload = caught.expect_err("join must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "from a");
        // Pool still serves work afterwards.
        assert_eq!(pool.install(|| join(|| 1, || 2)), (1, 2));
    }

    #[test]
    fn scope_waits_for_all_tasks_and_collects_panics() {
        let pool = Pool::new(2);
        let hits = AtomicUsize::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..32 {
                    s.spawn(|_| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                }
            })
        });
        assert_eq!(hits.load(Ordering::SeqCst), 32);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                scope(|s| {
                    s.spawn(|_| panic!("task boom"));
                })
            })
        }));
        assert!(caught.is_err());
        assert_eq!(pool.install(|| join(|| 3, || 4)), (3, 4));
    }

    #[test]
    fn install_runs_on_a_named_worker_thread() {
        let pool = Pool::new(1);
        let name = pool.install(|| std::thread::current().name().map(str::to_owned));
        assert_eq!(name.as_deref(), Some("pargeo-sched-0"));
        assert_eq!(pool.stats().workers, 1);
    }

    #[test]
    fn nested_install_same_pool_is_inline() {
        let pool = Pool::new(2);
        let (outer, inner) = pool.install(|| {
            let outer = std::thread::current().id();
            let inner = pool.install(|| std::thread::current().id());
            (outer, inner)
        });
        assert_eq!(outer, inner);
    }

    #[test]
    fn stats_count_tasks_and_respect_worker_count() {
        let pool = Pool::new(4);
        pool.install(|| {
            for _ in 0..100 {
                join(|| (), || ());
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.per_worker_tasks.len(), 4);
        // 1 install + 100 joins, each queueing one b-side job.
        assert!(stats.tasks_total >= 101, "tasks: {}", stats.tasks_total);
        assert_eq!(
            stats.per_worker_tasks.iter().sum::<u64>(),
            stats.tasks_total
        );
    }

    #[test]
    fn grain_env_and_builder_overrides() {
        let pool = PoolBuilder::new()
            .num_threads(1)
            .grain(777)
            .build()
            .unwrap();
        assert_eq!(pool.grain(), 777);
        let pool2 = Pool::new(1);
        let g = pool2.grain();
        assert!((1..=1 << 20).contains(&g), "calibrated grain: {g}");
        // Cached after first computation.
        assert_eq!(pool2.grain(), g);
    }
}
