//! Chase–Lev work-stealing deque (the weak-memory formulation of Lê,
//! Pop, Cohen & Nardelli, PPoPP 2013).
//!
//! One worker owns each deque: only the owner calls [`Deque::push`] and
//! [`Deque::pop`] (LIFO end, `bottom`); any thread may call
//! [`Deque::steal`] (FIFO end, `top`). The buffer is a growable circular
//! array published through an atomic pointer; retired buffers are kept
//! alive until the deque drops because a slow thief may still read
//! through a stale pointer (its CAS on `top` then fails, discarding the
//! stale value). Slot reads/writes use volatile accesses for the same
//! reason: a thief racing a wrapped-around owner write may observe a
//! torn value, which the `top` CAS rejects before it is ever used.
//!
//! This module is exposed publicly only so the crate's stress tests can
//! hammer the pop/steal race directly; it is not a stable API.

pub use crate::job::JobRef;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Mutex;

/// Result of a [`Deque::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Stole the oldest job.
    Success(JobRef),
}

/// A growable circular buffer of jobs. `cap` is always a power of two.
struct Buf {
    cap: usize,
    slots: *mut JobRef,
}

impl Buf {
    fn alloc(cap: usize) -> *mut Buf {
        debug_assert!(cap.is_power_of_two());
        let mut v: Vec<JobRef> = vec![JobRef::sentinel(0); cap];
        let slots = v.as_mut_ptr();
        std::mem::forget(v);
        Box::into_raw(Box::new(Buf { cap, slots }))
    }

    /// # Safety
    /// `ptr` must come from [`Buf::alloc`] and not be freed twice.
    unsafe fn dealloc(ptr: *mut Buf) {
        let buf = Box::from_raw(ptr);
        drop(Vec::from_raw_parts(buf.slots, buf.cap, buf.cap));
    }

    #[inline]
    unsafe fn get(&self, i: isize) -> JobRef {
        std::ptr::read_volatile(self.slots.add(i as usize & (self.cap - 1)))
    }

    #[inline]
    unsafe fn put(&self, i: isize, job: JobRef) {
        std::ptr::write_volatile(self.slots.add(i as usize & (self.cap - 1)), job);
    }
}

/// A single-owner, multi-thief work-stealing deque of [`JobRef`]s.
pub struct Deque {
    bottom: AtomicIsize,
    top: AtomicIsize,
    buf: AtomicPtr<Buf>,
    /// Buffers replaced by [`grow`](Self::grow); freed only on drop, since
    /// in-flight thieves may still read through them.
    retired: Mutex<Vec<*mut Buf>>,
}

// SAFETY: all shared-slot access goes through the atomics + volatile
// protocol above; JobRef is itself Send.
unsafe impl Send for Deque {}
unsafe impl Sync for Deque {}

impl Default for Deque {
    fn default() -> Self {
        Self::new()
    }
}

impl Deque {
    /// An empty deque with a small initial buffer.
    pub fn new() -> Self {
        Deque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buf: AtomicPtr::new(Buf::alloc(64)),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Racy size estimate (exact when quiescent). Any thread.
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Racy emptiness estimate. Any thread.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes a job on the owner (LIFO) end. Owner only.
    pub fn push(&self, job: JobRef) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buf.load(Ordering::Relaxed);
        unsafe {
            if b - t >= (*buf).cap as isize {
                buf = self.grow(b, t, buf);
            }
            (*buf).put(b, job);
        }
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Pops the most recently pushed job. Owner only.
    pub fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buf.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let job = unsafe { (*buf).get(b) };
        if t == b {
            // Last element: race thieves for it via CAS on top.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(job);
        }
        Some(job)
    }

    /// Tries to steal the oldest job. Any thread.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buf = self.buf.load(Ordering::Acquire);
        let job = unsafe { (*buf).get(t) };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(job)
        } else {
            Steal::Retry
        }
    }

    /// Doubles the buffer, copying live slots `t..b`. Owner only.
    unsafe fn grow(&self, b: isize, t: isize, old: *mut Buf) -> *mut Buf {
        let new = Buf::alloc((*old).cap * 2);
        for i in t..b {
            (*new).put(i, (*old).get(i));
        }
        self.buf.store(new, Ordering::Release);
        self.retired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(old);
        new
    }
}

impl Drop for Deque {
    fn drop(&mut self) {
        // No concurrent access at drop; free the live and retired buffers.
        unsafe {
            Buf::dealloc(self.buf.load(Ordering::Relaxed));
            for old in self
                .retired
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
            {
                Buf::dealloc(old);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = Deque::new();
        for i in 1..=4 {
            d.push(JobRef::sentinel(i));
        }
        assert_eq!(d.len(), 4);
        assert_eq!(d.steal(), Steal::Success(JobRef::sentinel(1)));
        assert_eq!(d.pop().map(|j| j.tag()), Some(4));
        assert_eq!(d.steal(), Steal::Success(JobRef::sentinel(2)));
        assert_eq!(d.pop().map(|j| j.tag()), Some(3));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let d = Deque::new();
        for i in 0..1000 {
            d.push(JobRef::sentinel(i));
        }
        for i in (0..1000).rev() {
            assert_eq!(d.pop().map(|j| j.tag()), Some(i));
        }
        assert_eq!(d.pop(), None);
    }
}
