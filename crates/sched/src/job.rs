//! Type-erased schedulable jobs.
//!
//! A [`JobRef`] is a `(data, exec)` pair pointing at either a
//! [`StackJob`] (borrowed from the stack of a blocked `join`/`install`
//! caller, completion signalled through a latch) or a [`HeapJob`]
//! (owned allocation for detached `spawn` and scope tasks). Both wrap
//! user code in `catch_unwind`, so a panicking task never unwinds into
//! the worker loop — the pool is never poisoned; payloads are parked in
//! the job's result slot (or the scope's panic slot) and rethrown on the
//! thread that waits for them.

use crate::latch::Latch;
use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};

/// Type-erased pointer to a job queued on a deque or the injector.
///
/// Public only for the deque stress tests (see [`crate::deque`]); nothing
/// outside this crate can execute one.
#[derive(Clone, Copy, Debug)]
pub struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: a JobRef crosses threads by design; the underlying job types
// require their closures and results to be Send, and each job is executed
// exactly once.
unsafe impl Send for JobRef {}
unsafe impl Sync for JobRef {}

impl PartialEq for JobRef {
    fn eq(&self, other: &Self) -> bool {
        // Jobs are distinct allocations/stack slots, so the data pointer
        // identifies a job; comparing `exec` would trip the
        // unpredictable-fn-pointer-comparison lint for no extra precision.
        std::ptr::eq(self.data, other.data)
    }
}
impl Eq for JobRef {}

impl JobRef {
    pub(crate) unsafe fn new(data: *const (), exec: unsafe fn(*const ())) -> JobRef {
        JobRef { data, exec }
    }

    /// Runs the job. Called exactly once, by a pool worker.
    ///
    /// # Safety
    /// `data` must still be alive (stack jobs: the owner is blocked on the
    /// latch; heap jobs: ownership transfers to the callee).
    pub(crate) unsafe fn execute(self) {
        (self.exec)(self.data)
    }

    /// An inert job carrying `tag` as its payload pointer — never executed;
    /// exists so the deque stress tests can queue distinguishable values.
    pub fn sentinel(tag: usize) -> JobRef {
        unsafe fn never(_: *const ()) {}
        JobRef {
            data: tag as *const (),
            exec: never,
        }
    }

    /// The tag of a [`sentinel`](Self::sentinel) job.
    pub fn tag(&self) -> usize {
        self.data as usize
    }
}

/// Completion state of a [`StackJob`].
pub(crate) enum JobResult<R> {
    /// Not executed yet.
    None,
    /// Finished normally.
    Ok(R),
    /// The closure panicked; the payload is rethrown by the waiter.
    Panicked(Box<dyn Any + Send>),
}

/// A job borrowed from the stack of a thread blocked on its completion.
///
/// The closure receives `migrated: true` when it executes on a different
/// worker than (or via injection from outside of) the one that spawned it
/// — the signal the iterator layer's splitter uses to re-split after a
/// steal.
pub(crate) struct StackJob<L: Latch, F, R> {
    pub(crate) latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    /// `(pool address, worker index)` of the spawning worker; `None` when
    /// injected from outside any pool (always a migration).
    spawner: Option<(usize, usize)>,
}

// SAFETY: accessed from the spawning thread and exactly one executing
// worker, with the latch ordering the handoff (func is taken before the
// latch is set; the result is read only after the latch is observed set).
unsafe impl<L: Latch + Sync, F: Send, R: Send> Sync for StackJob<L, F, R> {}

impl<L, F, R> StackJob<L, F, R>
where
    L: Latch + Sync,
    F: FnOnce(bool) -> R + Send,
    R: Send,
{
    pub(crate) fn new(latch: L, func: F, spawner: Option<(usize, usize)>) -> Self {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::None),
            spawner,
        }
    }

    /// # Safety
    /// The caller must keep `self` alive (blocked on the latch) until the
    /// returned job has executed.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new((self as *const Self).cast(), Self::execute)
    }

    unsafe fn execute(data: *const ()) {
        let this = &*data.cast::<Self>();
        let func = (*this.func.get()).take().expect("stack job executed twice");
        let migrated = crate::pool::current_worker_id() != this.spawner;
        let result = match panic::catch_unwind(AssertUnwindSafe(|| func(migrated))) {
            Ok(r) => JobResult::Ok(r),
            Err(payload) => JobResult::Panicked(payload),
        };
        *this.result.get() = result;
        // Release-store: the waiter's acquire-probe of the latch makes the
        // result write visible before take_result runs.
        this.latch.set();
    }

    /// # Safety
    /// Only after the latch was observed set.
    pub(crate) unsafe fn take_result(&self) -> JobResult<R> {
        std::mem::replace(&mut *self.result.get(), JobResult::None)
    }
}

/// An owned, fire-and-forget job (detached `spawn`, scope tasks).
pub(crate) struct HeapJob {
    func: Box<dyn FnOnce() + Send>,
}

impl HeapJob {
    /// Boxes `func` and erases it into a [`JobRef`], transferring ownership
    /// to whichever worker executes it.
    pub(crate) fn into_job_ref(func: Box<dyn FnOnce() + Send>) -> JobRef {
        let boxed = Box::new(HeapJob { func });
        unsafe { JobRef::new(Box::into_raw(boxed).cast_const().cast(), Self::execute) }
    }

    unsafe fn execute(data: *const ()) {
        let this = Box::from_raw(data.cast_mut().cast::<Self>());
        // Detached jobs have no waiter to rethrow into; scope tasks record
        // their payload in the scope before this catch ever sees it. Either
        // way the worker survives.
        let _ = panic::catch_unwind(AssertUnwindSafe(this.func));
    }
}
