//! Completion latches: how a blocked spawner learns its job finished.
//!
//! [`SpinLatch`] is the cheap intra-pool latch (`join`): the waiter is a
//! worker that keeps executing other jobs between probes, parking with a
//! bounded timeout when idle, so a pure atomic flag suffices.
//! [`LockLatch`] is for external threads blocked in `install`, which have
//! no work to do and sleep on a condvar.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// Anything a finished job can signal.
pub(crate) trait Latch {
    /// Marks the latch set. Must be the *last* access the setter makes to
    /// the job's memory: the waiter may free it immediately after.
    fn set(&self);
}

/// Atomic-flag latch probed by a working (never fully sleeping) waiter.
pub(crate) struct SpinLatch {
    done: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn new() -> Self {
        SpinLatch {
            done: AtomicBool::new(false),
        }
    }

    #[inline]
    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.done.store(true, Ordering::Release);
    }
}

/// Mutex + condvar latch for external (non-worker) waiters.
pub(crate) struct LockLatch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        LockLatch {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        self.cv.notify_all();
    }
}
