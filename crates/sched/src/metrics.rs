//! Scheduler observability: always-on per-worker atomics surfaced as
//! [`SchedStats`], plus optional registry-backed handles
//! ([`Pool::attach_registry`](crate::Pool::attach_registry)) following
//! the same discipline as the rest of the workspace — handles resolved
//! once, relaxed-atomic recording, nothing on the hot path beyond a
//! `OnceLock` load.

use pargeo_obs::{Counter, Gauge, Registry};
use std::sync::Arc;

/// Registry-backed metric handles for one pool.
pub(crate) struct SchedObs {
    /// `sched_tasks_total` — jobs executed (join halves, scope tasks,
    /// spawns, installs).
    pub(crate) tasks: Arc<Counter>,
    /// `sched_steals_total` — successful steals from another worker's
    /// deque.
    pub(crate) steals: Arc<Counter>,
    /// `sched_parks_total` — times a worker slept on the pool condvar
    /// (spin/yield rounds that found work don't count).
    pub(crate) parks: Arc<Counter>,
    /// `sched_queue_depth` — jobs waiting in the global injector.
    pub(crate) queue_depth: Arc<Gauge>,
    /// `sched_worker_tasks_total{worker=..}` — per-worker executed tasks.
    pub(crate) per_worker: Vec<Arc<Counter>>,
}

impl SchedObs {
    pub(crate) fn new(registry: &Arc<Registry>, workers: usize) -> Self {
        SchedObs {
            tasks: registry.counter("sched_tasks_total", &[]),
            steals: registry.counter("sched_steals_total", &[]),
            parks: registry.counter("sched_parks_total", &[]),
            queue_depth: registry.gauge("sched_queue_depth", &[]),
            per_worker: (0..workers)
                .map(|i| {
                    let label = i.to_string();
                    registry.counter("sched_worker_tasks_total", &[("worker", &label)])
                })
                .collect(),
        }
    }
}

/// Snapshot of a pool's lifetime counters (see
/// [`Pool::stats`](crate::Pool::stats)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedStats {
    /// Worker count.
    pub workers: usize,
    /// Total executed jobs across all workers.
    pub tasks_total: u64,
    /// Total successful steals.
    pub steals_total: u64,
    /// Total condvar parks.
    pub parks_total: u64,
    /// Executed jobs per worker, indexed by worker id.
    pub per_worker_tasks: Vec<u64>,
    /// Current injector depth (racy snapshot).
    pub injector_depth: usize,
}
