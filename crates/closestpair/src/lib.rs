//! # pargeo-closestpair — parallel closest pair (paper Module 2)
//!
//! Classic divide-and-conquer closest pair generalized to `D` dimensions:
//! split by the median along the widest dimension, solve the halves in
//! parallel, then check the strip around the splitting hyperplane whose
//! candidate pairs are bounded by a packing argument. The strip pass sorts
//! by the next dimension and scans a constant-width window.

#![warn(missing_docs)]

use pargeo_geometry::{GeoError, GeoResult, Point};
use pargeo_parlay as parlay;

/// The closest pair result: `(index a, index b, distance)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosestPair {
    /// Index of the first point of the pair (`a < b`).
    pub a: u32,
    /// Index of the second point of the pair.
    pub b: u32,
    /// Euclidean distance between the two points.
    pub dist: f64,
}

const SEQ_CUTOFF: usize = 1024;
/// Window width for the strip scan; 7 suffices in 2D, higher dimensions
/// use a packing-bound-scaled window.
fn window(d: usize) -> usize {
    8 * (1 << (d.saturating_sub(2)).min(4))
}

/// Finds the closest pair of distinct indices (`n ≥ 2`). Duplicate points
/// yield distance 0.
///
/// Panics on fewer than two points; [`try_closest_pair`] is the
/// non-panicking equivalent.
pub fn closest_pair<const D: usize>(points: &[Point<D>]) -> ClosestPair {
    try_closest_pair(points).expect("closest pair needs two points")
}

/// Non-panicking [`closest_pair`]: rejects inputs with fewer than two
/// points with [`GeoError::TooFewPoints`] instead of panicking.
pub fn try_closest_pair<const D: usize>(points: &[Point<D>]) -> GeoResult<ClosestPair> {
    if points.len() < 2 {
        return Err(GeoError::TooFewPoints {
            op: "closest_pair",
            needed: 2,
            got: points.len(),
        });
    }
    let mut items: Vec<(Point<D>, u32)> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u32))
        .collect();
    let dim = widest_dim(&items);
    parlay::sort_by_key_f64(&mut items, move |&(p, _)| p[dim]);
    let (a, b, d2) = solve(&items, dim);
    Ok(ClosestPair {
        a: a.min(b),
        b: a.max(b),
        dist: d2.sqrt(),
    })
}

fn widest_dim<const D: usize>(items: &[(Point<D>, u32)]) -> usize {
    let mut bbox = pargeo_geometry::Bbox::empty();
    for (p, _) in items {
        bbox.extend(p);
    }
    bbox.widest_dim()
}

/// Returns `(id_a, id_b, dist²)` for `items` sorted along `dim`.
fn solve<const D: usize>(items: &[(Point<D>, u32)], dim: usize) -> (u32, u32, f64) {
    let n = items.len();
    if n <= SEQ_CUTOFF {
        return brute(items);
    }
    let mid = n / 2;
    let split = items[mid].0[dim];
    let (l, r) = items.split_at(mid);
    let ((la, lb, ld), (ra, rb, rd)) = parlay::par_do(|| solve(l, dim), || solve(r, dim));
    let (mut ba, mut bb, mut bd) = if ld <= rd { (la, lb, ld) } else { (ra, rb, rd) };
    // Strip: points within sqrt(bd) of the splitting plane, sorted along a
    // second dimension, each checked against a constant window.
    let w = bd.sqrt();
    let mut strip: Vec<(Point<D>, u32)> = items
        .iter()
        .filter(|(p, _)| (p[dim] - split).abs() <= w)
        .copied()
        .collect();
    let sort_dim = (dim + 1) % D;
    strip.sort_unstable_by(|x, y| x.0[sort_dim].partial_cmp(&y.0[sort_dim]).unwrap());
    let win = window(D);
    for i in 0..strip.len() {
        for j in i + 1..(i + 1 + win).min(strip.len()) {
            // Early exit once the window's second coordinate outruns the
            // current best.
            let dy = strip[j].0[sort_dim] - strip[i].0[sort_dim];
            if dy * dy > bd {
                break;
            }
            let d = strip[i].0.dist_sq(&strip[j].0);
            if d < bd {
                bd = d;
                ba = strip[i].1;
                bb = strip[j].1;
            }
        }
    }
    (ba, bb, bd)
}

fn brute<const D: usize>(items: &[(Point<D>, u32)]) -> (u32, u32, f64) {
    let mut best = (items[0].1, items[1].1, f64::INFINITY);
    for i in 0..items.len() {
        for j in i + 1..items.len() {
            let d = items[i].0.dist_sq(&items[j].0);
            if d < best.2 {
                best = (items[i].1, items[j].1, d);
            }
        }
    }
    best
}

/// Brute-force reference for testing.
pub fn closest_pair_brute<const D: usize>(points: &[Point<D>]) -> ClosestPair {
    assert!(points.len() >= 2);
    let items: Vec<(Point<D>, u32)> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u32))
        .collect();
    let (a, b, d2) = brute(&items);
    ClosestPair {
        a: a.min(b),
        b: a.max(b),
        dist: d2.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargeo_datagen::{seed_spreader, uniform_cube, SeedSpreaderParams};

    fn check<const D: usize>(points: &[Point<D>]) {
        let got = closest_pair(points);
        let want = closest_pair_brute(points);
        assert!(
            (got.dist - want.dist).abs() <= 1e-9 * (1.0 + want.dist),
            "got {got:?}, want {want:?}"
        );
        assert!((points[got.a as usize].dist(&points[got.b as usize]) - got.dist).abs() < 1e-12);
        assert_ne!(got.a, got.b);
    }

    #[test]
    fn matches_brute_2d() {
        for seed in 0..5 {
            check(&uniform_cube::<2>(3_000, seed));
        }
    }

    #[test]
    fn matches_brute_3d() {
        for seed in 5..8 {
            check(&uniform_cube::<3>(2_500, seed));
        }
    }

    #[test]
    fn matches_brute_5d() {
        check(&uniform_cube::<5>(2_000, 11));
    }

    #[test]
    fn clustered_data() {
        check(&seed_spreader::<2>(
            4_000,
            13,
            SeedSpreaderParams::default(),
        ));
    }

    #[test]
    fn duplicates_give_zero() {
        let mut pts = uniform_cube::<2>(2_000, 14);
        pts.push(pts[77]);
        let got = closest_pair(&pts);
        assert_eq!(got.dist, 0.0);
    }

    #[test]
    fn two_points() {
        let pts = [Point::new([0.0, 0.0]), Point::new([3.0, 4.0])];
        let got = closest_pair(&pts);
        assert_eq!((got.a, got.b), (0, 1));
        assert!((got.dist - 5.0).abs() < 1e-12);
    }

    #[test]
    fn try_rejects_tiny_inputs_instead_of_panicking() {
        let err = try_closest_pair::<2>(&[]).unwrap_err();
        assert_eq!(
            err,
            GeoError::TooFewPoints {
                op: "closest_pair",
                needed: 2,
                got: 0
            }
        );
        let one = [Point::new([1.0, 2.0])];
        assert_eq!(
            try_closest_pair(&one),
            Err(GeoError::TooFewPoints {
                op: "closest_pair",
                needed: 2,
                got: 1
            })
        );
        let two = [Point::new([0.0, 0.0]), Point::new([3.0, 4.0])];
        assert!(try_closest_pair(&two).is_ok());
    }

    #[test]
    fn deterministic_across_pool_sizes() {
        let pts = uniform_cube::<2>(30_000, 15);
        let a = pargeo_parlay::with_threads(1, || closest_pair(&pts));
        let b = pargeo_parlay::with_threads(4, || closest_pair(&pts));
        assert_eq!(a.dist, b.dist);
    }
}
