//! Cross-crate integration: every SEB implementation on every dataset
//! family, plus relationships to the convex hull (the SEB of the hull
//! vertices equals the SEB of the set).

use pargeo::datagen;
use pargeo::prelude::*;
use pargeo::seb;

fn all_algos_agree<const D: usize>(pts: &[Point<D>], label: &str) {
    let reference = seb_welzl_seq(pts);
    let algos: Vec<(&str, fn(&[Point<D>]) -> Ball<D>)> = vec![
        ("welzl_par", seb_welzl_parallel),
        ("welzl_mtf", seb::seb_welzl_parallel_mtf),
        ("welzl_mtf_pivot", seb_welzl_parallel_mtf_pivot),
        ("orthant_scan", seb_orthant_scan),
        ("sampling", seb_sampling),
    ];
    for (name, f) in algos {
        let b = f(pts);
        assert!(
            pts.iter().all(|p| b.contains(p)),
            "{label}/{name}: not enclosing"
        );
        assert!(
            (b.radius - reference.radius).abs() <= 1e-6 * (1.0 + reference.radius),
            "{label}/{name}: radius {} vs {}",
            b.radius,
            reference.radius
        );
    }
}

#[test]
fn seb_all_datasets_2d() {
    let n = 8_000;
    all_algos_agree(&datagen::uniform_cube::<2>(n, 1), "2D-U");
    all_algos_agree(&datagen::in_sphere::<2>(n, 2), "2D-IS");
    all_algos_agree(&datagen::on_sphere::<2>(n, 3), "2D-OS");
    all_algos_agree(&datagen::on_cube::<2>(n, 4), "2D-OC");
}

#[test]
fn seb_all_datasets_3d() {
    let n = 6_000;
    all_algos_agree(&datagen::uniform_cube::<3>(n, 5), "3D-U");
    all_algos_agree(&datagen::in_sphere::<3>(n, 6), "3D-IS");
    all_algos_agree(&datagen::on_sphere::<3>(n, 7), "3D-OS");
    all_algos_agree(&datagen::statue_surface(n, 8), "3D-Statue");
}

#[test]
fn seb_5d() {
    all_algos_agree(&datagen::uniform_cube::<5>(4_000, 9), "5D-U");
}

#[test]
fn seb_of_hull_equals_seb_of_set() {
    let pts = datagen::in_sphere::<2>(10_000, 10);
    let full = seb_welzl_seq(&pts);
    let hull = hull2d_quickhull_parallel(&pts);
    let hull_pts: Vec<Point2> = hull.iter().map(|&i| pts[i as usize]).collect();
    let reduced = seb_welzl_seq(&hull_pts);
    assert!((full.radius - reduced.radius).abs() < 1e-9 * (1.0 + full.radius));
}

#[test]
fn sampling_phase_actually_prunes_scans() {
    // On uniform data the sampling phase should converge long before
    // scanning everything: the final ball from a 5% sample already covers
    // almost all points.
    let pts = datagen::uniform_cube::<3>(50_000, 11);
    let sample = &pts[..2_500];
    let b = seb_welzl_seq(sample);
    let outliers = pts.iter().filter(|p| !b.contains(p)).count();
    assert!(
        outliers < pts.len() / 20,
        "sample ball should cover ≥95%, {outliers} escaped"
    );
}
