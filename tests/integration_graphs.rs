//! Cross-crate integration: the spatial-graph hierarchy
//! EMST ⊆ β-skeleton(β∈[1,2]) ⊆ Gabriel ⊆ Delaunay, and WSPD-based
//! structures vs brute force.

use pargeo::datagen::uniform_cube;
use pargeo::prelude::*;
use pargeo::wspd::emst::emst_prim_brute;

fn edge_set(edges: &[(u32, u32)]) -> std::collections::HashSet<(u32, u32)> {
    edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect()
}

#[test]
fn graph_hierarchy_holds() {
    let pts = uniform_cube::<2>(1_000, 1);
    let d = pargeo::delaunay::delaunay(&pts);
    let del = edge_set(&delaunay_edges(&d));
    let gab = edge_set(&gabriel_graph(&pts, &d));
    let b2 = edge_set(&beta_skeleton(&pts, 2.0));
    let mst = emst(&pts);
    let mst_edges: std::collections::HashSet<(u32, u32)> =
        mst.iter().map(|e| (e.u.min(e.v), e.u.max(e.v))).collect();

    assert!(gab.is_subset(&del), "Gabriel ⊆ Delaunay");
    assert!(b2.is_subset(&gab), "β=2 ⊆ Gabriel");
    assert!(
        mst_edges.is_subset(&gab),
        "EMST ⊆ Gabriel (classic inclusion)"
    );
    assert!(mst_edges.is_subset(&del), "EMST ⊆ Delaunay");
}

#[test]
fn emst_weight_matches_prim_on_mid_size() {
    let pts = uniform_cube::<2>(800, 2);
    let total: f64 = emst(&pts).iter().map(|e| e.weight).sum();
    let want = emst_prim_brute(&pts);
    assert!((total - want).abs() <= 1e-7 * (1.0 + want));
}

#[test]
fn spanner_paths_respect_stretch_via_sampling() {
    // Sampled stretch check on a larger instance (exhaustive check lives
    // in the wspd crate's unit tests).
    let pts = uniform_cube::<2>(3_000, 3);
    let t = 2.0;
    let edges = spanner(&pts, t);
    // Dijkstra from a few sources over the spanner.
    let n = pts.len();
    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for e in &edges {
        adj[e.u as usize].push((e.v, e.weight));
        adj[e.v as usize].push((e.u, e.weight));
    }
    for src in (0..n).step_by(997) {
        let dist = dijkstra(&adj, src);
        for (j, d) in dist.iter().enumerate().step_by(311) {
            let direct = pts[src].dist(&pts[j]);
            assert!(
                *d <= t * direct + 1e-9,
                "stretch violated {src}->{j}: {d} > {t}×{direct}"
            );
        }
    }
}

fn dijkstra(adj: &[Vec<(u32, f64)>], src: usize) -> Vec<f64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(PartialEq)]
    struct K(f64);
    impl Eq for K {}
    impl PartialOrd for K {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for K {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&o.0).unwrap()
        }
    }
    let mut dist = vec![f64::INFINITY; adj.len()];
    dist[src] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((K(0.0), src as u32)));
    while let Some(Reverse((K(d), u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &(v, w) in &adj[u as usize] {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((K(nd), v)));
            }
        }
    }
    dist
}

#[test]
fn wspd_drives_both_emst_and_spanner() {
    // The same decomposition object serves both clients.
    let pts = uniform_cube::<2>(500, 4);
    let (tree, pairs) = wspd(&pts, 2.0);
    assert!(!pairs.is_empty());
    // Every pair's bccp is a valid candidate edge.
    for &(a, b) in pairs.iter().take(50) {
        let (u, v, d) = pargeo::wspd::bccp_nodes(&tree, a, b);
        assert!((pts[u as usize].dist(&pts[v as usize]) - d).abs() < 1e-9);
    }
}

#[test]
fn knn_graph_contains_nearest_neighbor_edges() {
    let pts = uniform_cube::<2>(2_000, 5);
    let edges = edge_set(&knn_graph(&pts, 1));
    // The closest pair must appear as someone's nearest neighbor.
    let cp = closest_pair(&pts);
    assert!(edges.contains(&(cp.a.min(cp.b), cp.a.max(cp.b))));
}

#[test]
fn bccp_agrees_with_closest_pair_on_split_set() {
    let pts = uniform_cube::<2>(3_000, 6);
    // Split by parity: the closest pair of the whole set with endpoints of
    // different parity equals the BCCP of the two halves.
    let a: Vec<Point2> = pts.iter().step_by(2).copied().collect();
    let b: Vec<Point2> = pts.iter().skip(1).step_by(2).copied().collect();
    let (_, _, d) = bccp_points(&a, &b);
    // Brute check.
    let mut want = f64::INFINITY;
    for x in &a {
        for y in &b {
            want = want.min(x.dist(y));
        }
    }
    assert!((d - want).abs() < 1e-9);
}
