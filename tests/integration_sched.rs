//! Scheduler integration (DESIGN.md §2.8): the store's parallelism —
//! including the pipelined executor's read/write overlap — runs on the
//! shared `pargeo-sched` pool, the pool is digest-invisible at every
//! worker count, and the octagon hull prefilter changes counters but
//! never answers.

use pargeo::prelude::*;
use pargeo::sched;

fn workload() -> Workload<2> {
    let specs = WorkloadSpec::store_presets(600);
    specs[0].generate()
}

/// Sum of every counter sample whose family name starts with `prefix`.
fn sum_of(counters: &[(String, u64)], prefix: &str) -> u64 {
    counters
        .iter()
        .filter(|(k, _)| k.starts_with(prefix))
        .map(|(_, v)| *v)
        .sum()
}

/// Satellite 1: `pipeline(true)` overlap work executes as tasks on the
/// store's dedicated persistent pool (no ad-hoc threads). The sched
/// counters land in the store's registry because the store attaches it at
/// build time, and they keep growing batch over batch on the same pool —
/// pool-thread reuse, visible through the per-worker counters.
#[test]
fn pipelined_store_runs_on_the_shared_sched_pool() {
    let w = workload();
    let mut store = GeoStore::<2>::builder()
        .threads(2)
        .pipeline(true)
        .observe(ObsLevel::Metrics)
        .build();
    let report = run_store_workload(&mut store, &w);
    assert_eq!(report.errors, 0, "clean preset must serve cleanly");

    let registry = store.registry().expect("metrics level").clone();
    let counters = registry.counter_values();
    let tasks_after_run = sum_of(&counters, "sched_tasks_total");
    assert!(
        tasks_after_run > 0,
        "store parallelism must execute as sched-pool tasks, got none"
    );
    // Overlap actually went through the pipelined executor...
    assert!(sum_of(&counters, "geostore_pipeline_runs_total") > 0);
    // ...and the per-worker breakdown accounts for every task: work ran
    // on the pool's two persistent workers, not on transient threads.
    let per_worker = sum_of(&counters, "sched_worker_tasks_total");
    assert_eq!(per_worker, tasks_after_run);

    // A second batch on the same store reuses the same workers: the
    // registry-backed counters (attached once, at build) keep growing.
    let mut next = workload();
    next.ops.truncate(next.ops.len() / 2);
    let _ = run_store_workload(&mut store, &next);
    let counters = registry.counter_values();
    assert!(
        sum_of(&counters, "sched_tasks_total") > tasks_after_run,
        "subsequent batches must run on the same persistent pool"
    );
}

/// The pool is digest-invisible end to end: the same preset workload
/// digests identically on dedicated pools of 1, 2 and 4 workers, serial
/// and pipelined alike.
#[test]
fn store_digests_are_worker_count_invariant() {
    let w = workload();
    let mut baseline = GeoStore::<2>::builder().threads(1).build();
    let want = run_store_workload(&mut baseline, &w);
    for threads in [2usize, 4] {
        for pipeline in [false, true] {
            let mut store = GeoStore::<2>::builder()
                .threads(threads)
                .pipeline(pipeline)
                .build();
            let got = run_store_workload(&mut store, &w);
            assert_eq!(
                got.digest, want.digest,
                "threads={threads} pipeline={pipeline} perturbed the digest"
            );
            assert_eq!(got.errors, want.errors);
            assert_eq!(got.cache, want.cache);
        }
    }
}

/// Satellite 2: the octagon prefilter is answer-invisible but visible in
/// obs — identical digests with it on or off, and the discarded-points
/// counter moves only when it is on. `incremental(false)` forces the
/// wholesale recompute path the filter guards.
#[test]
fn hull_prefilter_is_answer_invisible_and_metered() {
    let w = workload();
    for backend in Backend::all() {
        let mut plain = GeoStore::<2>::builder()
            .backend(backend)
            .incremental(false)
            .observe(ObsLevel::Metrics)
            .build();
        let want = run_store_workload(&mut plain, &w);
        let plain_counters = plain.registry().unwrap().counter_values();
        assert_eq!(
            sum_of(&plain_counters, "geostore_prefilter_discarded_total"),
            0,
            "counter must not move with the filter off"
        );

        let mut filtered = GeoStore::<2>::builder()
            .backend(backend)
            .incremental(false)
            .prefilter(true)
            .observe(ObsLevel::Metrics)
            .build();
        let got = run_store_workload(&mut filtered, &w);
        assert_eq!(
            got.digest,
            want.digest,
            "prefilter perturbed the digest on {}",
            backend.label()
        );
        assert_eq!(got.errors, want.errors);
        let counters = filtered.registry().unwrap().counter_values();
        assert!(
            sum_of(&counters, "geostore_prefilter_discarded_total") > 0,
            "the preset's hull recomputes see interior points to discard ({})",
            backend.label()
        );
    }

    // With incremental maintenance on, the engine path takes precedence;
    // prefilter must still be a no-op on answers.
    let mut inc = GeoStore::<2>::builder().prefilter(true).build();
    let mut plain_inc = GeoStore::<2>::builder().build();
    let got = run_store_workload(&mut inc, &w);
    let want = run_store_workload(&mut plain_inc, &w);
    assert_eq!(got.digest, want.digest);
    assert_eq!(got.cache, want.cache);
}

/// The facade exposes the scheduler: a dedicated pool reports steals on
/// an imbalanced workload at ≥2 workers (the counters the `sched_sweep`
/// bench records), and stats stay coherent.
#[test]
fn sched_stats_observable_through_facade() {
    let pool = sched::PoolBuilder::new()
        .num_threads(2)
        .grain(1)
        .build()
        .expect("pool");
    // Skewed fork-join: the left arm is always heavy, the right arm
    // trivial — lots of steal opportunities.
    fn skewed(depth: u32) -> u64 {
        if depth == 0 {
            return 1;
        }
        let (a, b) = sched::join(|| skewed(depth - 1), || 1u64);
        a + b
    }
    let total = pool.install(|| skewed(10));
    assert_eq!(total, 11);
    let stats = pool.stats();
    assert_eq!(stats.workers, 2);
    assert!(stats.tasks_total > 0);
    assert_eq!(
        stats.per_worker_tasks.iter().sum::<u64>(),
        stats.tasks_total
    );
}
