//! Cross-module integration: the unified batch-dynamic engine.
//!
//! One mixed workload (interleaved batch insert / delete / k-NN / range)
//! replays identically over all three `SpatialIndex` backends, the
//! brute-force `Vec` oracle, and two thread counts; answer digests must
//! match bit-for-bit. The read path additionally cross-checks against the
//! static `RangeTree2d` through the `BatchQuery` machinery.

use pargeo::prelude::*;

fn presets_small() -> Vec<WorkloadSpec> {
    WorkloadSpec::presets(4_000)
        .into_iter()
        .map(|mut s| {
            s.batch_size = s.batch_size.min(200);
            s
        })
        .collect()
}

fn backends() -> Vec<Box<dyn SpatialIndex<2>>> {
    vec![
        Box::new(DynKdTree::<2>::new()),
        Box::new(BdlTree::<2>::with_buffer_size(256)),
        Box::new(ZdTree::<2>::new()),
    ]
}

#[test]
fn every_preset_workload_matches_the_oracle_on_every_backend() {
    for spec in presets_small() {
        let w: Workload<2> = spec.generate();
        let mut oracle = VecIndex::<2>::new();
        let want = run_workload(&mut oracle, &w);
        for mut b in backends() {
            let got = run_workload(b.as_mut(), &w);
            assert_eq!(
                got.digest(),
                want.digest(),
                "{}: answer digest diverged on workload {}",
                got.backend,
                spec.name
            );
            assert_eq!(got.final_live, want.final_live, "{}", spec.name);
            assert_eq!(got.deleted, want.deleted, "{}", spec.name);
            assert_eq!(got.knn_results, want.knn_results, "{}", spec.name);
            assert_eq!(got.range_results, want.range_results, "{}", spec.name);
            let s = b.snapshot();
            assert_eq!(s.live, want.final_live);
            assert_eq!(s.deleted as usize, want.deleted);
        }
    }
}

#[test]
fn sharded_engine_replays_every_preset_digest_identically() {
    // The shard dimension of the digest anchors: a ShardedIndex over any
    // backend is a drop-in SpatialIndex, and its workload digests equal
    // the unsharded backend's and the oracle's at every shard count.
    for spec in presets_small() {
        let w: Workload<2> = spec.generate();
        let mut oracle = VecIndex::<2>::new();
        let want = run_workload(&mut oracle, &w);
        for s in [1usize, 2, 8] {
            let sharded: Vec<Box<dyn SpatialIndex<2>>> = vec![
                Box::new(ShardedIndex::<2>::new(s, |_| Box::new(DynKdTree::new()))),
                Box::new(ShardedIndex::<2>::new(s, |_| {
                    Box::new(BdlTree::with_buffer_size(256))
                })),
                Box::new(ShardedIndex::<2>::new(s, |_| Box::new(ZdTree::new()))),
            ];
            for mut b in sharded {
                let got = run_workload(b.as_mut(), &w);
                assert_eq!(
                    got.digest(),
                    want.digest(),
                    "{} S={s}: digest diverged on {}",
                    got.backend,
                    spec.name
                );
                assert_eq!(got.final_live, want.final_live, "{} S={s}", spec.name);
                assert_eq!(got.deleted, want.deleted, "{} S={s}", spec.name);
            }
        }
    }
}

#[test]
fn workload_replay_is_thread_count_invariant() {
    let mut spec = WorkloadSpec::new("threads", Distribution::UniformCube, 3_000, 16);
    spec.seed = 21;
    let w: Workload<3> = spec.generate();
    for mk in [0usize, 1, 2] {
        let reports: Vec<WorkloadReport> = [1usize, 2]
            .iter()
            .map(|&threads| {
                pargeo::parlay::with_threads(threads, || {
                    let mut b: Box<dyn SpatialIndex<3>> = match mk {
                        0 => Box::new(DynKdTree::<3>::new()),
                        1 => Box::new(BdlTree::<3>::with_buffer_size(256)),
                        _ => Box::new(ZdTree::<3>::new()),
                    };
                    run_workload(b.as_mut(), &w)
                })
            })
            .collect();
        assert_eq!(
            reports[0].digest(),
            reports[1].digest(),
            "backend {mk}: answers changed with thread count"
        );
        assert_eq!(reports[0].final_live, reports[1].final_live);
    }
}

#[test]
fn read_path_is_swappable_with_the_static_range_tree() {
    // Update the dynamic backends, then serve the same Report queries from
    // a RangeTree2d built over the oracle's live set — all four answers
    // must coincide (after translating tree positions to insertion ids).
    let pts = pargeo::datagen::uniform_cube::<2>(3_000, 9);
    let mut oracle = VecIndex::<2>::new();
    let mut dynkd = DynKdTree::<2>::new();
    let mut bdl = BdlTree::<2>::with_buffer_size(128);
    let mut zd = ZdTree::<2>::new();
    let stream: [(&[Point2], bool); 4] = [
        (&pts[..2_000], true),
        (&pts[..800], false),
        (&pts[2_000..], true),
        (&pts[1_200..1_500], false),
    ];
    for (batch, is_insert) in stream {
        if is_insert {
            SpatialIndex::insert(&mut oracle, batch);
            dynkd.insert(batch);
            bdl.insert(batch);
            zd.insert(batch);
        } else {
            let n = SpatialIndex::delete(&mut oracle, batch);
            assert_eq!(dynkd.delete(batch), n);
            assert_eq!(bdl.delete(batch), n);
            assert_eq!(zd.delete(batch), n);
        }
    }
    let live_pts: Vec<Point2> = oracle.items().iter().map(|&(p, _)| p).collect();
    let live_ids: Vec<u32> = oracle.items().iter().map(|&(_, id)| id).collect();
    let rt = RangeTree2d::build(&live_pts);
    let queries: Vec<Report<Bbox<2>>> = pargeo::datagen::uniform_rects::<2>(60, 10, 0.25)
        .into_iter()
        .map(Report)
        .collect();
    let want: Vec<Vec<u32>> = rt
        .answer_batch(&queries)
        .into_iter()
        .map(|row| {
            let mut ids: Vec<u32> = row.into_iter().map(|pos| live_ids[pos as usize]).collect();
            ids.sort_unstable();
            ids
        })
        .collect();
    assert_eq!(dynkd.answer_batch(&queries), want, "dyn-kd vs range tree");
    assert_eq!(bdl.answer_batch(&queries), want, "bdl vs range tree");
    assert_eq!(zd.answer_batch(&queries), want, "zd vs range tree");
}

#[test]
fn epoch_stats_trace_the_update_stream() {
    let pts = pargeo::datagen::uniform_cube::<2>(2_000, 4);
    for mut b in backends() {
        b.insert(&pts[..1_000]);
        b.delete(&pts[..250]);
        b.insert(&pts[1_000..]);
        b.delete(&pts[500..750]);
        let s = b.snapshot();
        assert_eq!(s.epoch, 4, "{}", b.backend_name());
        assert_eq!(s.live, 1_500, "{}", b.backend_name());
        assert_eq!(s.inserted, 2_000, "{}", b.backend_name());
        assert_eq!(s.deleted, 500, "{}", b.backend_name());
        // Every tree backend must have built some structure by now.
        assert!(s.rebuilds > 0, "{}", b.backend_name());
    }
}
