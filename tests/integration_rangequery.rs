//! Cross-module integration for the `rangequery` subsystem: the range
//! tree, the kd-tree backend, the interval tree, and the rectangle counter
//! answer 10k-object / 1k-query randomized instances exactly (vs O(n·q)
//! brute force), identically across backends, and independently of thread
//! count.

use pargeo::datagen::{uniform_cube, uniform_intervals, uniform_rects};
use pargeo::prelude::*;

const N: usize = 10_000;
const Q: usize = 1_000;

#[test]
fn range_tree_and_kdtree_match_brute_force_at_scale() {
    let pts = uniform_cube::<2>(N, 1);
    let queries: Vec<Count<Bbox<2>>> = uniform_rects::<2>(Q, 2, 0.1)
        .into_iter()
        .map(Count)
        .collect();

    let rt = RangeTree2d::build(&pts);
    let kd = KdTree::build(&pts, SplitRule::ObjectMedian);
    let rt_counts = rt.answer_batch(&queries);
    let kd_counts = kd.answer_batch(&queries);

    let mut nonzero = 0;
    for (q, (&a, &b)) in queries.iter().zip(rt_counts.iter().zip(&kd_counts)) {
        let want = pts.iter().filter(|p| q.0.contains(p)).count();
        assert_eq!(a, want);
        assert_eq!(b, want);
        nonzero += (want > 0) as usize;
    }
    // The instance must actually exercise the structures.
    assert!(nonzero > Q / 2, "degenerate instance: {nonzero} non-empty");

    // Reports agree verbatim (both sorted by contract) on a subsample.
    let reports: Vec<Report<Bbox<2>>> = queries[..100].iter().map(|q| Report(q.0)).collect();
    assert_eq!(rt.answer_batch(&reports), kd.answer_batch(&reports));
}

#[test]
fn interval_tree_matches_brute_force_at_scale() {
    let iv = uniform_intervals(N, 3, 0.02);
    let tree = IntervalTree::build(&iv);
    let side = pargeo::datagen::cube_side(N);

    let stabs: Vec<f64> = (0..Q).map(|i| side * i as f64 / (Q - 1) as f64).collect();
    let mut hits = 0usize;
    for &x in &stabs {
        let want: Vec<u32> = iv
            .iter()
            .enumerate()
            .filter(|(_, &(l, r))| l <= x && x <= r)
            .map(|(j, _)| j as u32)
            .collect();
        assert_eq!(tree.stab_count(x), want.len(), "x={x}");
        assert_eq!(tree.stab_report(x), want, "x={x}");
        hits += want.len();
    }
    assert!(hits > 0, "degenerate stabbing instance");

    for &(a, b) in &uniform_intervals(Q, 4, 0.05) {
        let want = iv.iter().filter(|&&(l, r)| l <= b && r >= a).count();
        assert_eq!(tree.intersect_count(a, b), want);
    }
}

#[test]
fn rectangle_counter_matches_brute_force_at_scale() {
    let rects = uniform_rects::<2>(N, 5, 0.02);
    let set = RectangleSet::build(&rects);
    let queries: Vec<Count<Bbox<2>>> = uniform_rects::<2>(Q, 6, 0.05)
        .into_iter()
        .map(Count)
        .collect();
    let got = set.answer_batch(&queries);
    let mut hits = 0usize;
    for (q, &g) in queries.iter().zip(&got) {
        let want = rects.iter().filter(|r| r.intersects(&q.0)).count();
        assert_eq!(g, want, "{:?}", q.0);
        hits += want;
    }
    assert!(hits > 0, "degenerate rectangle instance");
}

#[test]
fn answers_are_identical_across_thread_counts() {
    let pts = uniform_cube::<2>(N, 7);
    let rects = uniform_rects::<2>(N / 2, 8, 0.03);
    let queries: Vec<Count<Bbox<2>>> = uniform_rects::<2>(Q / 2, 9, 0.08)
        .into_iter()
        .map(Count)
        .collect();
    let run = || {
        let rt = RangeTree2d::build(&pts);
        let set = RectangleSet::build(&rects);
        let tree = IntervalTree::build(&uniform_intervals(N / 2, 10, 0.02));
        (
            rt.answer_batch(&queries),
            set.answer_batch(&queries),
            tree.stab_report(pargeo::datagen::cube_side(N) / 2.0),
        )
    };
    let sequential = pargeo::parlay::with_threads(1, run);
    let parallel = pargeo::parlay::with_threads(4, run);
    assert_eq!(sequential, parallel);
}
