//! End-to-end pipeline tests: the library's modules composed the way a
//! downstream application would use them, plus property-based tests over
//! whole pipelines.

use pargeo::datagen;
use pargeo::prelude::*;
use proptest::prelude::*;

#[test]
fn gis_pipeline_cluster_analysis() {
    // A GIS-flavored pipeline: clustered sites → EMST → cut long edges →
    // connected components = clusters; then per-cluster hulls and SEBs.
    let pts = datagen::seed_spreader::<2>(5_000, 99, datagen::SeedSpreaderParams::default());
    let mst = emst(&pts);
    // Cut the 9 longest MST edges => 10 clusters (single-linkage).
    let mut edges = mst.clone();
    edges.sort_by(|a, b| a.weight.partial_cmp(&b.weight).unwrap());
    let keep = &edges[..edges.len() - 9];
    let mut uf = pargeo::wspd::UnionFind::new(pts.len());
    for e in keep {
        uf.union(e.u, e.v);
    }
    assert_eq!(uf.component_count(), 10);
    // Per-cluster geometry.
    let mut clusters: std::collections::HashMap<u32, Vec<Point2>> = Default::default();
    for (i, p) in pts.iter().enumerate() {
        clusters.entry(uf.find(i as u32)).or_default().push(*p);
    }
    for (_, members) in clusters {
        if members.len() >= 3 {
            let ball = seb_welzl_seq(&members);
            assert!(members.iter().all(|p| ball.contains(p)));
            let hull = hull2d_seq(&members);
            // The SEB of the hull equals the SEB of the cluster.
            let hull_pts: Vec<Point2> = hull.iter().map(|&i| members[i as usize]).collect();
            if hull_pts.len() >= 2 {
                let b2 = seb_welzl_seq(&hull_pts);
                assert!((ball.radius - b2.radius).abs() <= 1e-6 * (1.0 + ball.radius));
            }
        }
    }
}

#[test]
fn streaming_index_feeding_geometry() {
    // Maintain a BDL-tree under churn; at each epoch, pull the live points
    // and run hull + closest pair on them.
    let pts = datagen::uniform_cube::<2>(6_000, 5);
    let mut bdl = BdlTree::<2>::with_buffer_size(256);
    bdl.insert(&pts[..3_000]);
    for epoch in 0..3 {
        let lo = 3_000 + epoch * 1_000;
        bdl.insert(&pts[lo..lo + 1_000]);
        bdl.delete(&pts[epoch * 500..(epoch + 1) * 500]);
        let live: Vec<Point2> = bdl.collect_live().into_iter().map(|(p, _)| p).collect();
        assert_eq!(live.len(), bdl.len());
        let hull = hull2d_quickhull_parallel(&live);
        pargeo::hull::hull2d::validate::check_hull2d(&live, &hull)
            .unwrap_or_else(|e| panic!("epoch {epoch}: {e}"));
        let cp = closest_pair(&live);
        assert!(cp.dist >= 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hull containment + SEB enclosure over arbitrary small point sets.
    #[test]
    fn prop_hull_and_seb_on_arbitrary_points(
        raw in prop::collection::vec((-1e4f64..1e4, -1e4f64..1e4), 4..120)
    ) {
        let pts: Vec<Point2> = raw.iter().map(|&(x, y)| Point2::new([x, y])).collect();
        let hull = hull2d_seq(&pts);
        pargeo::hull::hull2d::validate::check_hull2d(&pts, &hull).unwrap();
        let par = hull2d_randinc(&pts);
        pargeo::hull::hull2d::validate::check_hull2d(&pts, &par).unwrap();
        let ball = seb_welzl_seq(&pts);
        prop_assert!(pts.iter().all(|p| ball.contains(p)));
    }

    /// kd-tree k-NN ≡ brute force on arbitrary points (including heavy
    /// duplicates from the narrow value range).
    #[test]
    fn prop_knn_exact(
        raw in prop::collection::vec((0i32..50, 0i32..50), 10..200),
        k in 1usize..8
    ) {
        let pts: Vec<Point2> = raw
            .iter()
            .map(|&(x, y)| Point2::new([x as f64, y as f64]))
            .collect();
        let tree = KdTree::build(&pts, SplitRule::ObjectMedian);
        let q = pts[0];
        let got = tree.knn(&q, k);
        let want = pargeo::kdtree::knn_brute_force(&pts, &q, k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.dist_sq - w.dist_sq).abs() < 1e-9);
        }
    }

    /// EMST weight ≡ Prim on arbitrary points.
    #[test]
    fn prop_emst_weight(
        raw in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..60)
    ) {
        let pts: Vec<Point2> = raw.iter().map(|&(x, y)| Point2::new([x, y])).collect();
        let total: f64 = emst(&pts).iter().map(|e| e.weight).sum();
        let want = pargeo::wspd::emst::emst_prim_brute(&pts);
        prop_assert!((total - want).abs() <= 1e-7 * (1.0 + want));
    }

    /// Delaunay empty-circumcircle on arbitrary integer-ish points
    /// (degenerate-rich: collinear and cocircular configurations abound).
    #[test]
    fn prop_delaunay_valid(
        raw in prop::collection::vec((0i32..64, 0i32..64), 3..80)
    ) {
        let pts: Vec<Point2> = raw
            .iter()
            .map(|&(x, y)| Point2::new([x as f64, y as f64]))
            .collect();
        let d = pargeo::delaunay::delaunay(&pts);
        pargeo::delaunay::validate_delaunay(&pts, &d.triangles).unwrap();
    }

    /// Morton sort is a permutation ordered by interleaved bits.
    #[test]
    fn prop_morton_sorted(
        raw in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..300)
    ) {
        let mut pts: Vec<Point2> = raw.iter().map(|&(x, y)| Point2::new([x, y])).collect();
        let orig = pts.clone();
        let ids = pargeo::morton::morton_sort(&mut pts);
        let mut sorted_ids: Vec<u32> = ids.clone();
        sorted_ids.sort_unstable();
        prop_assert_eq!(sorted_ids, (0..orig.len() as u32).collect::<Vec<_>>());
        let bbox = pargeo::morton::parallel_bbox(&pts);
        let codes = pargeo::morton::morton_codes(&pts, &bbox);
        prop_assert!(codes.windows(2).all(|w| w[0] <= w[1]));
    }
}
