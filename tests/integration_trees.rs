//! Cross-crate integration: the four spatial indexes (static kd-tree, B1,
//! B2, BDL, Zd) answer identically under identical update streams.

use pargeo::datagen::uniform_cube;
use pargeo::kdtree::knn_brute_force;
use pargeo::prelude::*;

#[test]
fn all_indexes_agree_after_update_stream() {
    let n = 4_000;
    let pts = uniform_cube::<3>(n, 1);
    let batch = n / 10;

    let mut bdl = BdlTree::<3>::with_buffer_size(128);
    let mut b1 = B1Tree::<3>::new(SplitRule::ObjectMedian);
    let mut b2 = B2Tree::<3>::new(SplitRule::ObjectMedian);
    let mut zd = ZdTree::from_points(&pts[..batch]);
    b1.insert(&pts[..batch]);
    b2.insert(&pts[..batch]);
    bdl.insert(&pts[..batch]);
    for chunk in pts[batch..].chunks(batch) {
        bdl.insert(chunk);
        b1.insert(chunk);
        b2.insert(chunk);
        zd.insert(chunk);
    }
    // Delete 30%.
    for chunk in pts.chunks(batch).take(3) {
        assert_eq!(bdl.delete(chunk), batch);
        assert_eq!(b1.delete(chunk), batch);
        assert_eq!(b2.delete(chunk), batch);
        assert_eq!(zd.delete(chunk), batch);
    }
    let live = &pts[3 * batch..];
    assert_eq!(bdl.len(), live.len());
    assert_eq!(b1.len(), live.len());
    assert_eq!(b2.len(), live.len());
    assert_eq!(zd.len(), live.len());

    for q in live.iter().step_by(97) {
        let want = knn_brute_force(live, q, 5);
        for (name, got) in [
            ("bdl", bdl.knn(q, 5)),
            ("b1", b1.knn(q, 5)),
            ("b2", b2.knn(q, 5)),
            ("zd", zd.knn(q, 5)),
        ] {
            assert_eq!(got.len(), want.len(), "{name}");
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g.dist_sq - w.dist_sq).abs() <= 1e-9 * (1.0 + g.dist_sq),
                    "{name}: {g:?} vs {w:?}"
                );
            }
        }
    }
}

#[test]
fn static_tree_and_veb_tree_answer_identically() {
    let pts = uniform_cube::<2>(3_000, 2);
    let kd = KdTree::build(&pts, SplitRule::ObjectMedian);
    let items: Vec<(Point2, u32)> = pts
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u32))
        .collect();
    let veb = VebTree::build(&items);
    for q in pts.iter().step_by(131) {
        let a = kd.knn(q, 7);
        let b = veb.knn(q, 7);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.dist_sq - y.dist_sq).abs() < 1e-9);
        }
    }
}

#[test]
fn range_and_knn_are_consistent() {
    // The k-th NN distance defines a ball whose range query returns at
    // least k points.
    let pts = uniform_cube::<2>(5_000, 3);
    let tree = KdTree::build(&pts, SplitRule::SpatialMedian);
    for q in pts.iter().step_by(211) {
        let nn = tree.knn(q, 10);
        // sqrt then squaring can round below the k-th distance; inflate by
        // one ulp-scale factor so the boundary neighbor stays inside.
        let r = nn.last().unwrap().dist_sq.sqrt() * (1.0 + 1e-12);
        let hits = tree.range_ball(q, r);
        assert!(hits.len() >= 10, "only {} hits", hits.len());
    }
}

#[test]
fn bdl_knn_spans_buffer_and_static_trees() {
    // Force a state where the answer straddles the buffer and two static
    // trees: nearest neighbors must still be exact.
    let pts = uniform_cube::<2>(2_100, 4);
    let mut bdl = BdlTree::<2>::with_buffer_size(1_000);
    bdl.insert(&pts[..1_000]); // tree 0
    bdl.insert(&pts[1_000..2_000]); // cascades
    bdl.insert(&pts[2_000..]); // 100 in buffer
    assert!(bdl.tree_sizes().iter().sum::<usize>() < 2_100);
    for q in pts.iter().step_by(173) {
        let want = knn_brute_force(&pts, q, 4);
        let got = bdl.knn(q, 4);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist_sq - w.dist_sq).abs() < 1e-9 * (1.0 + g.dist_sq));
        }
    }
}

#[test]
fn seven_dimensional_trees() {
    // The paper's BDL evaluation runs in 7D; make sure nothing is
    // hard-wired to low dimensions.
    let pts = uniform_cube::<7>(2_000, 5);
    let mut bdl = BdlTree::<7>::with_buffer_size(64);
    for chunk in pts.chunks(200) {
        bdl.insert(chunk);
    }
    for q in pts.iter().step_by(401) {
        let want = knn_brute_force(&pts, q, 5);
        let got = bdl.knn(q, 5);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist_sq - w.dist_sq).abs() < 1e-9 * (1.0 + g.dist_sq));
        }
    }
}
