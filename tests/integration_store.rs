//! Integration: the GeoStore façade serves every `Request` variant over
//! all three dynamic backends with identical answers — cross-backend and
//! against direct per-crate calls on the same live set.

use pargeo::prelude::*;
use pargeo::store::digest_responses;

fn points(n: usize, seed: u64) -> Vec<Point2> {
    pargeo::datagen::uniform_cube::<2>(n, seed)
}

/// A scripted mixed stream covering every request variant, with writes
/// interleaved so memoized derived structures must invalidate.
fn script(pts: &[Point2]) -> Vec<Request<2>> {
    let n = pts.len();
    let boxes = pargeo::datagen::uniform_rects::<2>(20, 9, 0.3);
    vec![
        Request::Insert(pts[..n / 2].to_vec()),
        Request::Knn {
            queries: pts.iter().step_by(97).copied().collect(),
            k: 5,
        },
        Request::Range(boxes.clone()),
        Request::Hull,
        Request::Seb,
        Request::ClosestPair,
        Request::Emst,
        Request::KnnGraph { k: 3 },
        Request::DelaunayGraph,
        Request::Delete(pts[..n / 4].to_vec()),
        Request::Hull,
        Request::Hull, // repeat: must be a cache hit with the same answer
        Request::Emst,
        Request::Insert(pts[n / 2..].to_vec()),
        Request::Knn {
            queries: pts.iter().step_by(61).copied().collect(),
            k: 4,
        },
        Request::Range(boxes),
        Request::DelaunayGraph,
        Request::KnnGraph { k: 3 },
        Request::Stats,
    ]
}

fn stores() -> Vec<GeoStore<2>> {
    let mut v: Vec<GeoStore<2>> = Backend::all()
        .into_iter()
        .map(|b| GeoStore::builder().backend(b).build())
        .collect();
    v.push(GeoStore::builder().backend(Backend::Oracle).build());
    v
}

#[test]
fn all_backends_serve_identical_digests() {
    let pts = points(2_000, 31);
    let reqs = script(&pts);
    let mut all: Vec<(&'static str, Vec<GeoResult<Response<2>>>)> = Vec::new();
    for mut store in stores() {
        let name = store.backend().label();
        all.push((name, store.execute(&reqs)));
    }
    let (ref_name, ref_responses) = &all[0];
    let want = digest_responses(ref_responses);
    for (name, responses) in &all[1..] {
        assert_eq!(
            digest_responses(responses),
            want,
            "{name} digest diverged from {ref_name}"
        );
        // Derived structures are computed from the store mirror (identical
        // across backends), so those responses must be *exactly* equal.
        for (i, (a, b)) in ref_responses.iter().zip(responses).enumerate() {
            match (a, b) {
                (Ok(Response::Knn(_)), Ok(Response::Knn(_))) => {} // ids checked via digest
                (Ok(Response::Stats(_)), Ok(Response::Stats(_))) => {} // backend-specific
                _ => assert_eq!(a, b, "{name} response {i} diverged"),
            }
        }
    }
}

#[test]
fn responses_match_direct_per_crate_calls() {
    let pts = points(1_500, 32);
    let mut store: GeoStore<2> = GeoStore::builder().backend(Backend::Bdl).build();
    store.insert(&pts);
    store.delete(&pts[100..400]);

    // The live mirror: ids 0..100 and 400..1500 (delete is by value;
    // uniform points are distinct).
    let ids: Vec<u32> = (0..100u32).chain(400..1_500).collect();
    let live: Vec<Point2> = ids.iter().map(|&i| pts[i as usize]).collect();

    let hull = store.hull().unwrap();
    let want: Vec<u32> = try_hull2d(&live)
        .unwrap()
        .into_iter()
        .map(|p| ids[p as usize])
        .collect();
    assert_eq!(hull, want, "hull != direct hull2d call");

    let ball = store.seb().unwrap();
    assert_eq!(ball, try_seb(&live).unwrap(), "seb != direct call");

    let cp = store.closest_pair().unwrap();
    let direct = try_closest_pair(&live).unwrap();
    let (a, b) = (ids[direct.a as usize], ids[direct.b as usize]);
    assert_eq!((cp.a, cp.b), (a.min(b), a.max(b)));
    assert_eq!(cp.dist, direct.dist);

    let mst = store.emst().unwrap();
    let direct = emst(&live);
    assert_eq!(mst.len(), direct.len());
    for (got, want) in mst.iter().zip(&direct) {
        assert_eq!((got.u, got.v), (ids[want.u as usize], ids[want.v as usize]));
        assert_eq!(got.weight, want.weight);
    }

    let graph = store.knn_graph(4).unwrap();
    let direct: Vec<(u32, u32)> = knn_graph(&live, 4)
        .into_iter()
        .map(|(u, v)| (ids[u as usize], ids[v as usize]))
        .collect();
    assert_eq!(graph, direct, "knn graph != direct call");

    let del = store.delaunay_graph().unwrap();
    let direct: Vec<(u32, u32)> = delaunay_edges(&try_delaunay(&live).unwrap())
        .into_iter()
        .map(|(u, v)| (ids[u as usize], ids[v as usize]))
        .collect();
    assert_eq!(del, direct, "delaunay graph != direct call");

    // Spatial queries agree with the brute-force oracle store.
    let mut oracle: GeoStore<2> = GeoStore::builder().backend(Backend::Oracle).build();
    oracle.insert(&pts);
    oracle.delete(&pts[100..400]);
    let queries: Vec<Point2> = pts.iter().step_by(83).copied().collect();
    assert_eq!(
        store.knn(&queries, 6).unwrap(),
        oracle.knn(&queries, 6).unwrap()
    );
    let boxes = pargeo::datagen::uniform_rects::<2>(25, 5, 0.25);
    assert_eq!(store.range(&boxes).unwrap(), oracle.range(&boxes).unwrap());
}

#[test]
fn memoization_hits_between_writes_and_invalidates_on_them() {
    let pts = points(1_200, 33);
    let mut store: GeoStore<2> = GeoStore::builder().build();
    store.insert(&pts);

    let h1 = store.hull().unwrap();
    let stats = store.stats();
    assert_eq!((stats.cache.hits, stats.cache.misses), (0, 1));

    let h2 = store.hull().unwrap();
    let stats = store.stats();
    assert_eq!((stats.cache.hits, stats.cache.misses), (1, 1));
    assert_eq!(h1, h2);

    // A write invalidates; the recomputed hull reflects the new live set.
    store.delete(&pts[..600]);
    let h3 = store.hull().unwrap();
    let stats = store.stats();
    assert_eq!((stats.cache.hits, stats.cache.misses), (1, 2));
    assert!(h3.iter().all(|&id| id >= 600));
    let live: Vec<Point2> = pts[600..].to_vec();
    let want: Vec<u32> = try_hull2d(&live)
        .unwrap()
        .into_iter()
        .map(|p| p + 600)
        .collect();
    assert_eq!(h3, want);

    // An *empty* write batch is a no-op and must not invalidate.
    store.insert(&[]);
    let _ = store.hull().unwrap();
    let stats = store.stats();
    assert_eq!((stats.cache.hits, stats.cache.misses), (2, 2));
}

#[test]
fn typed_errors_are_identical_across_backends() {
    for backend in Backend::all() {
        let mut store: GeoStore<2> = GeoStore::builder().backend(backend).build();
        let name = backend.label();
        assert_eq!(
            store.hull(),
            Err(GeoError::EmptyInput { op: "hull2d" }),
            "{name}"
        );
        assert_eq!(
            store.seb(),
            Err(GeoError::EmptyInput { op: "seb" }),
            "{name}"
        );
        assert_eq!(
            store.closest_pair(),
            Err(GeoError::TooFewPoints {
                op: "closest_pair",
                needed: 2,
                got: 0
            }),
            "{name}"
        );
        assert_eq!(
            store.emst(),
            Err(GeoError::TooFewPoints {
                op: "emst",
                needed: 2,
                got: 0
            }),
            "{name}"
        );
        assert_eq!(
            store.knn_graph(2),
            Err(GeoError::EmptyInput { op: "knn_graph" }),
            "{name}"
        );
        assert_eq!(
            store.delaunay_graph(),
            Err(GeoError::EmptyInput { op: "delaunay" }),
            "{name}"
        );

        // k > n is a typed error, not a short row.
        let pts = points(10, 34);
        store.insert(&pts);
        assert_eq!(
            store.knn(&pts[..2], 11),
            Err(GeoError::KTooLarge {
                op: "knn",
                k: 11,
                n: 10
            }),
            "{name}"
        );
        assert_eq!(store.knn(&pts[..2], 10).unwrap()[0].len(), 10, "{name}");
        assert_eq!(
            store.knn(&pts[..2], 0),
            Err(GeoError::BadParameter {
                op: "knn",
                what: "k must be positive"
            }),
            "{name}"
        );

        // k-NN graphs exclude self, so k must stay below the live count —
        // a typed error, not silently truncated rows.
        assert_eq!(
            store.knn_graph(10),
            Err(GeoError::KTooLarge {
                op: "knn_graph",
                k: 10,
                n: 10
            }),
            "{name}"
        );
        assert_eq!(store.knn_graph(9).unwrap().len(), 90, "{name}");

        // Collinear live sets: degenerate, typed, and the store survives.
        let mut flat: GeoStore<2> = GeoStore::builder().backend(backend).build();
        let line: Vec<Point2> = (0..50).map(|i| Point2::new([i as f64, i as f64])).collect();
        flat.insert(&line);
        assert_eq!(
            flat.hull(),
            Err(GeoError::Degenerate {
                op: "hull2d",
                what: "collinear"
            }),
            "{name}"
        );
        assert_eq!(
            flat.delaunay_graph(),
            Err(GeoError::Degenerate {
                op: "delaunay",
                what: "collinear"
            }),
            "{name}"
        );
        // … and keeps serving after the error.
        assert_eq!(flat.knn(&line[..1], 2).unwrap()[0].len(), 2, "{name}");
    }

    // Dimension dispatch: hull/Delaunay are typed errors outside 2D/3D.
    let mut store5: GeoStore<5> = GeoStore::builder().build();
    store5.insert(&pargeo::datagen::uniform_cube::<5>(100, 35));
    assert_eq!(
        store5.hull(),
        Err(GeoError::DimensionUnsupported { op: "hull", dim: 5 })
    );
    assert_eq!(
        store5.delaunay_graph(),
        Err(GeoError::DimensionUnsupported {
            op: "delaunay",
            dim: 5
        })
    );
    // Dimension-agnostic requests still work in 5D.
    assert!(store5.seb().is_ok());
    assert_eq!(store5.emst().unwrap().len(), 99);
}

#[test]
fn hull3d_served_in_three_dimensions() {
    let pts = pargeo::datagen::uniform_cube::<3>(800, 36);
    let mut store: GeoStore<3> = GeoStore::builder().backend(Backend::Zd).build();
    store.insert(&pts);
    let hull = store.hull().unwrap();
    let want = try_hull3d(&pts).unwrap();
    assert_eq!(hull, want.vertices);

    // Coplanar 3D input: typed degenerate error through the store path.
    let mut flat: GeoStore<3> = GeoStore::builder().build();
    let plane: Vec<Point3> = (0..40)
        .map(|i| Point3::new([(i % 8) as f64, (i / 8) as f64, 1.0]))
        .collect();
    flat.insert(&plane);
    assert_eq!(
        flat.hull(),
        Err(GeoError::Degenerate {
            op: "hull3d",
            what: "coplanar"
        })
    );
}

#[test]
fn sharded_stores_are_digest_identical_for_every_backend_and_preset() {
    // The acceptance sweep: for every backend and every store preset,
    // GeoStore with S ∈ {1, 2, 8} shards produces bit-identical workload
    // digests to the unsharded store and to the oracle store.
    for mut spec in WorkloadSpec::store_presets(1_600) {
        spec.batch_size = spec.batch_size.min(100);
        let w: Workload<2> = spec.generate();
        let mut oracle: GeoStore<2> = GeoStore::builder().backend(Backend::Oracle).build();
        let want = run_store_workload(&mut oracle, &w);
        for backend in Backend::all() {
            let mut base = GeoStore::builder().backend(backend).build();
            let b = run_store_workload(&mut base, &w);
            assert_eq!(b.shards, 1);
            assert_eq!(
                b.digest, want.digest,
                "{} unsharded vs oracle on {}",
                b.backend, spec.name
            );
            for s in [1usize, 2, 8] {
                let mut store = GeoStore::builder().backend(backend).shards(s).build();
                let r = run_store_workload(&mut store, &w);
                assert_eq!(r.shards, s, "1/2/8 are powers of two already");
                assert_eq!(
                    r.digest, want.digest,
                    "{} S={s} digest diverged on {}",
                    r.backend, spec.name
                );
                assert_eq!(r.errors, want.errors, "{} S={s}", spec.name);
                assert_eq!(r.final_live, want.final_live, "{} S={s}", spec.name);
                assert_eq!(r.ops, want.ops, "{} S={s}", spec.name);
            }
        }
    }
}

#[test]
fn sharded_execute_matches_the_scripted_stream_exactly() {
    // The scripted mixed stream (every Request variant) through sharded
    // stores: responses must be exactly those of the unsharded store.
    let pts = points(2_000, 38);
    let reqs = script(&pts);
    for backend in Backend::all() {
        let mut base = GeoStore::builder().backend(backend).build();
        let want = base.execute(&reqs);
        for s in [2usize, 8] {
            let mut store = GeoStore::builder().backend(backend).shards(s).build();
            let responses = store.execute(&reqs);
            assert_eq!(store.shard_count(), s);
            assert_eq!(
                digest_responses(&responses),
                digest_responses(&want),
                "{} S={s} digest",
                backend.label()
            );
            for (i, (a, b)) in want.iter().zip(&responses).enumerate() {
                match (a, b) {
                    (Ok(Response::Stats(_)), Ok(Response::Stats(_))) => {} // index-internal
                    _ => assert_eq!(a, b, "{} S={s} response {i}", backend.label()),
                }
            }
        }
    }
}

#[test]
fn noop_writes_spare_the_memo_cache() {
    let pts = points(400, 37);
    let mut store: GeoStore<2> = GeoStore::builder().build();
    store.insert(&pts[..300]);
    let h1 = store.hull().unwrap();
    assert_eq!(store.stats().cache.misses, 1);
    let epoch = store.stats().write_epoch;

    // A delete matching nothing live removes zero points: the write epoch
    // must not advance and the memoized hull must survive.
    assert_eq!(store.delete(&pts[300..]), 0);
    let stats = store.stats();
    assert_eq!(stats.write_epoch, epoch, "no-op delete bumped the epoch");
    assert_eq!(stats.cache.spared, 1);
    let h2 = store.hull().unwrap();
    assert_eq!(h1, h2);
    let stats = store.stats();
    assert_eq!((stats.cache.hits, stats.cache.misses), (1, 1));

    // Empty insert and empty delete runs are spared too.
    store.insert(&[]);
    assert_eq!(store.delete(&[]), 0);
    assert_eq!(store.stats().cache.spared, 3);
    assert_eq!(store.hull().unwrap(), h1);
    assert_eq!(store.stats().cache.hits, 2);
    assert_eq!(store.stats().write_epoch, epoch);

    // A delete that actually removes points invalidates as before.
    assert_eq!(store.delete(&pts[..100]), 100);
    let h3 = store.hull().unwrap();
    assert!(h3.iter().all(|&id| id >= 100));
    let stats = store.stats();
    assert_eq!((stats.cache.hits, stats.cache.misses), (2, 2));
    assert_eq!(stats.write_epoch, epoch + 1);
    assert_eq!(stats.cache.spared, 3);
}

#[test]
fn incremental_maintenance_is_bit_identical_across_backends_and_shards() {
    // The tentpole's acceptance sweep: the delta-maintaining store (the
    // default) must answer the scripted mixed stream — fresh computes,
    // insert-only epochs, delete-forced rebuilds — bit-identically to a
    // wholesale-recompute store, for every backend and shard count.
    let pts = points(2_000, 39);
    let reqs = script(&pts);
    for backend in Backend::all() {
        let mut plain = GeoStore::<2>::builder()
            .backend(backend)
            .incremental(false)
            .build();
        let want = plain.execute(&reqs);
        assert_eq!(
            plain.stats().cache.incremental,
            0,
            "wholesale baseline must never take the delta path"
        );
        for shards in [1usize, 4] {
            let mut store = GeoStore::<2>::builder()
                .backend(backend)
                .shards(shards)
                .build();
            let responses = store.execute(&reqs);
            assert_eq!(
                digest_responses(&responses),
                digest_responses(&want),
                "{} S={shards}: incremental digest != wholesale digest",
                backend.label()
            );
            for (i, (a, b)) in want.iter().zip(&responses).enumerate() {
                match (a, b) {
                    // Cache counters legitimately differ between the two
                    // maintenance modes; everything else is bit-for-bit.
                    (Ok(Response::Stats(_)), Ok(Response::Stats(_))) => {}
                    _ => assert_eq!(a, b, "{} S={shards} response {i}", backend.label()),
                }
            }
        }
    }
}

#[test]
fn degenerate_live_views_after_deletes_stay_typed_for_every_kind() {
    // Deletes can leave the live set degenerate in ways inserts never
    // exhibit (the delta engines are torn down, the rebuild hits the
    // degenerate case directly). Every derived kind must come back as a
    // typed error or a well-defined result — never a panic — and the
    // store must keep serving afterwards.
    let k_kinds = |s: &mut GeoStore<2>| {
        (
            s.hull(),
            s.seb(),
            s.closest_pair(),
            s.emst(),
            s.knn_graph(1),
            s.delaunay_graph(),
        )
    };
    for backend in Backend::all() {
        let name = backend.label();
        let grid: Vec<Point2> = (0..36)
            .map(|i| Point2::new([(i % 6) as f64, (i / 6) as f64]))
            .collect();

        // Warm the memo (engines alive), then delete down to two points.
        let mut store: GeoStore<2> = GeoStore::builder().backend(backend).build();
        store.insert(&grid);
        store.hull().unwrap();
        store.delaunay_graph().unwrap();
        store.delete(&grid[..34]);
        let (hull, seb, cp, mst, kg, del) = k_kinds(&mut store);
        assert_eq!(
            hull,
            Err(GeoError::TooFewPoints {
                op: "hull2d",
                needed: 3,
                got: 2
            }),
            "{name}"
        );
        assert!(seb.is_ok(), "{name}: {seb:?}");
        assert!(cp.is_ok(), "{name}: {cp:?}");
        assert_eq!(mst.map(|m| m.len()), Ok(1), "{name}");
        assert_eq!(kg.map(|g| g.len()), Ok(2), "{name}");
        assert_eq!(
            del,
            Err(GeoError::TooFewPoints {
                op: "delaunay",
                needed: 3,
                got: 2
            }),
            "{name}"
        );

        // … and down to zero.
        store.delete(&grid[34..]);
        assert_eq!(
            store.hull(),
            Err(GeoError::EmptyInput { op: "hull2d" }),
            "{name}"
        );
        assert_eq!(
            store.delaunay_graph(),
            Err(GeoError::EmptyInput { op: "delaunay" }),
            "{name}"
        );
        assert_eq!(
            store.seb(),
            Err(GeoError::EmptyInput { op: "seb" }),
            "{name}"
        );

        // Collinear remainder: delete every row but one.
        let mut flat: GeoStore<2> = GeoStore::builder().backend(backend).build();
        flat.insert(&grid);
        flat.hull().unwrap();
        flat.delaunay_graph().unwrap();
        let not_row_2: Vec<Point2> = grid
            .iter()
            .filter(|p| p.coords[1] != 2.0)
            .copied()
            .collect();
        flat.delete(&not_row_2);
        assert_eq!(flat.len(), 6, "{name}");
        let (hull, seb, cp, mst, kg, del) = k_kinds(&mut flat);
        assert_eq!(
            hull,
            Err(GeoError::Degenerate {
                op: "hull2d",
                what: "collinear"
            }),
            "{name}"
        );
        assert_eq!(
            del,
            Err(GeoError::Degenerate {
                op: "delaunay",
                what: "collinear"
            }),
            "{name}"
        );
        assert!(seb.is_ok() && cp.is_ok(), "{name}");
        assert_eq!(mst.map(|m| m.len()), Ok(5), "{name}");
        assert_eq!(kg.map(|g| g.len()), Ok(6), "{name}");

        // All-duplicate remainder: several live copies of one coordinate.
        let mut dup: GeoStore<2> = GeoStore::builder().backend(backend).build();
        // Off-lattice coordinate: deleting the grid (by value) must not
        // also take the copies down.
        let copies: Vec<Point2> = (0..5).map(|_| Point2::new([2.5, 3.5])).collect();
        dup.insert(&grid);
        dup.insert(&copies);
        dup.hull().unwrap();
        dup.delaunay_graph().unwrap();
        dup.delete(&grid);
        assert_eq!(dup.len(), 5, "{name}");
        let (hull, seb, cp, mst, kg, del) = k_kinds(&mut dup);
        assert_eq!(
            hull,
            Err(GeoError::Degenerate {
                op: "hull2d",
                what: "coincident"
            }),
            "{name}"
        );
        assert_eq!(
            del,
            Err(GeoError::Degenerate {
                op: "delaunay",
                what: "collinear"
            }),
            "{name}"
        );
        let ball = seb.unwrap();
        assert_eq!(ball.radius, 0.0, "{name}: coincident ball has radius 0");
        assert_eq!(cp.unwrap().dist, 0.0, "{name}");
        let mst = mst.unwrap();
        assert_eq!(mst.len(), 4, "{name}");
        assert!(mst.iter().all(|e| e.weight == 0.0), "{name}");
        assert_eq!(kg.map(|g| g.len()), Ok(5), "{name}");

        // The store survives every degenerate answer above.
        assert_eq!(dup.knn(&copies[..1], 3).unwrap()[0].len(), 3, "{name}");
    }
}

#[test]
fn malformed_request_streams_yield_typed_errors_never_panics() {
    // The serve path has no panicking branch left: pool construction,
    // single-request dispatch, and the read fan-out all answer impossible
    // input with typed errors.
    let built = GeoStore::<2>::builder().threads(2).try_build();
    let mut store = built.expect("thread pool construction succeeds here");

    let reqs: Vec<Request<2>> = vec![
        Request::Knn {
            queries: vec![Point2::new([0.0, 0.0])],
            k: 0,
        },
        Request::Knn {
            queries: vec![Point2::new([0.0, 0.0])],
            k: 5,
        },
        Request::KnnGraph { k: 0 },
        Request::Hull,
        Request::DelaunayGraph,
        Request::Insert(vec![]),
        Request::Delete(vec![Point2::new([9.0, 9.0])]),
        Request::Emst,
        Request::Stats,
    ];
    let responses = store.execute(&reqs);
    assert_eq!(responses.len(), reqs.len());
    assert_eq!(
        responses[0],
        Err(GeoError::BadParameter {
            op: "knn",
            what: "k must be positive"
        })
    );
    assert_eq!(
        responses[1],
        Err(GeoError::KTooLarge {
            op: "knn",
            k: 5,
            n: 0
        })
    );
    // The emptiness check precedes the k check, matching `knn_graph`'s
    // own argument-validation order.
    assert_eq!(responses[2], Err(GeoError::EmptyInput { op: "knn_graph" }));
    assert_eq!(responses[3], Err(GeoError::EmptyInput { op: "hull2d" }));
    assert_eq!(responses[4], Err(GeoError::EmptyInput { op: "delaunay" }));
    assert_eq!(
        responses[5],
        Ok(Response::Inserted {
            count: 0,
            first_id: None
        })
    );
    assert_eq!(responses[6], Ok(Response::Deleted { count: 0 }));
    assert_eq!(
        responses[7],
        Err(GeoError::TooFewPoints {
            op: "emst",
            needed: 2,
            got: 0
        })
    );
    assert!(matches!(responses[8], Ok(Response::Stats(_))));

    // After the error barrage the store still serves normal traffic.
    let pts = points(64, 40);
    store.insert(&pts);
    assert!(store.hull().is_ok());
    assert_eq!(store.knn(&pts[..2], 3).unwrap().len(), 2);
}

#[test]
fn workload_replay_digests_agree_across_backends() {
    let mut spec = WorkloadSpec::store_presets(2_000)
        .into_iter()
        .next()
        .unwrap();
    spec.seed = 77;
    let w: Workload<2> = spec.generate();
    assert!(w.derived_count() > 0, "preset generated no analytics ops");

    let mut reports: Vec<StoreReport> = Vec::new();
    for backend in Backend::all() {
        let mut store = GeoStore::builder().backend(backend).build();
        reports.push(run_store_workload(&mut store, &w));
    }
    let mut oracle = GeoStore::builder().backend(Backend::Oracle).build();
    reports.push(run_store_workload(&mut oracle, &w));

    let want = &reports[3];
    for r in &reports[..3] {
        assert_eq!(r.digest, want.digest, "{} digest", r.backend);
        assert_eq!(r.final_live, want.final_live, "{}", r.backend);
        assert_eq!(r.errors, want.errors, "{}", r.backend);
        assert_eq!(r.ops, want.ops, "{}", r.backend);
    }
}
