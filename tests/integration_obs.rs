//! Observability integration: observation must never touch answers.
//!
//! The contract under test: a `GeoStore` built with `.observe(..)` at any
//! level serves **bit-identical** answers (and digests) to an unobserved
//! store, on every backend and shard count — while, when on, its registry
//! reports non-empty per-class latency histograms, per-shard routing
//! counters that sum to the store totals, and memo-path counters/spans
//! that mirror `CacheStats` exactly.

use pargeo::prelude::*;
use std::time::Duration;

fn workload() -> Workload<2> {
    let specs = WorkloadSpec::store_presets(600);
    specs[0].generate()
}

fn make(backend: Backend, shards: usize, level: ObsLevel) -> GeoStore<2> {
    let mut b = GeoStore::<2>::builder().backend(backend).observe(level);
    if shards > 0 {
        b = b.shards(shards);
    }
    b.build()
}

#[test]
fn observe_levels_never_perturb_digests() {
    let w = workload();
    for backend in Backend::all() {
        // 0 = unsharded executor; 1 and 4 = morton-routed shard counts.
        for shards in [0usize, 1, 4] {
            let mut off = make(backend, shards, ObsLevel::Off);
            assert!(off.registry().is_none());
            assert_eq!(off.obs_level(), ObsLevel::Off);
            let want = run_store_workload(&mut off, &w);
            for level in [ObsLevel::Metrics, ObsLevel::Trace] {
                let mut on = make(backend, shards, level);
                assert_eq!(on.obs_level(), level);
                let got = run_store_workload(&mut on, &w);
                assert_eq!(
                    got.digest,
                    want.digest,
                    "observe({level:?}) perturbed the digest: {} S={shards}",
                    backend.label()
                );
                assert_eq!(got.errors, want.errors, "{} S={shards}", backend.label());
                assert_eq!(
                    got.final_live,
                    want.final_live,
                    "{} S={shards}",
                    backend.label()
                );
                assert_eq!(got.cache, want.cache, "{} S={shards}", backend.label());
            }
        }
    }
}

#[test]
fn per_shard_counters_sum_to_store_totals() {
    let w = workload();
    let mut store = make(Backend::DynKd, 4, ObsLevel::Metrics);
    let r = run_store_workload(&mut store, &w);
    let stats = store.stats();

    // Per-shard snapshots partition the aggregate snapshot.
    let snaps = store.shard_snapshots();
    assert_eq!(snaps.len(), 4);
    assert_eq!(snaps.iter().map(|s| s.live).sum::<usize>(), store.len());
    assert_eq!(
        snaps.iter().map(|s| s.inserted).sum::<u64>(),
        stats.snapshot.inserted
    );
    assert_eq!(r.shard_live.iter().sum::<usize>(), r.final_live);
    assert_eq!(r.shard_live.len(), 4);

    let counters = store.registry().expect("metrics level").counter_values();
    let sum_of = |prefix: &str| -> u64 {
        counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    };
    // Every inserted point is routed to exactly one shard.
    assert_eq!(sum_of("shard_routed_points_total"), stats.snapshot.inserted);
    // The epoch counter tracks the planner's write epochs.
    assert_eq!(sum_of("geostore_write_epochs_total"), stats.write_epoch);
    // One request counter tick per request served (initial load + ops).
    assert_eq!(sum_of("geostore_requests_total"), (1 + w.ops.len()) as u64);
    // Memo counters mirror CacheStats in aggregate.
    let memo = |path: &str| sum_of(&format!("geostore_memo_total{{path=\"{path}\"}}"));
    assert_eq!(memo("hit"), stats.cache.hits);
    assert_eq!(memo("spared"), stats.cache.spared);
    assert_eq!(
        memo("fresh") + memo("incremental") + memo("rebuilt"),
        stats.cache.misses
    );
}

#[test]
fn memo_path_spans_and_counters_mirror_cache_stats() {
    let pts = pargeo::datagen::uniform_cube::<2>(400, 9);
    let mut store: GeoStore<2> = GeoStore::builder()
        .observe(ObsLevel::Trace)
        .slow_op_threshold(Duration::ZERO)
        .build();
    store.insert(&pts[..300]);
    store.hull().unwrap(); // fresh compute
    store.hull().unwrap(); // cache hit
    store.insert(&pts[300..]); // insert-only epoch: engine survives
    store.hull().unwrap(); // incremental apply
    store.delete(&pts[..10]); // delete epoch: rebuild pending
    store.hull().unwrap(); // rebuild fallback
    store.insert(&[]); // no-op write: spared
    let cache = store.stats().cache;
    assert_eq!(
        (
            cache.hits,
            cache.misses,
            cache.incremental,
            cache.rebuilds,
            cache.spared
        ),
        (1, 3, 1, 1, 1),
        "scenario drifted; span assertions below assume this shape"
    );

    let registry = std::sync::Arc::clone(store.registry().expect("trace level"));
    let counters = registry.counter_values();
    let memo = |path: &str| {
        counters
            .iter()
            .find(|(k, _)| k == &format!("geostore_memo_total{{path=\"{path}\"}}"))
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(memo("fresh"), 1);
    assert_eq!(memo("incremental"), cache.incremental);
    assert_eq!(memo("rebuilt"), cache.rebuilds);
    assert_eq!(memo("hit"), cache.hits);
    assert_eq!(memo("spared"), cache.spared);

    // The trace ring holds one MemoPath-labeled derived_memo span per
    // compute (hits never open a compute span), in execution order.
    let events = registry.trace_events();
    let paths: Vec<String> = events
        .iter()
        .filter(|e| e.scope == "derived_memo")
        .filter_map(|e| {
            e.labels
                .iter()
                .find(|(k, _)| *k == "path")
                .map(|(_, v)| v.clone())
        })
        .collect();
    assert_eq!(paths, ["fresh", "incremental", "rebuilt"]);
    // Every serve-path phase appears as a span scope.
    for scope in ["plan_coalesce", "write_apply", "read_fanout"] {
        assert!(
            events.iter().any(|e| e.scope == scope),
            "no {scope} span traced"
        );
    }
    // A zero slow-op threshold captures every span.
    assert!(!registry.slow_ops().is_empty());

    // Non-empty per-class latency histograms for the exercised classes.
    let derived = registry.histogram("geostore_request_nanos", &[("class", "derived")]);
    assert_eq!(derived.count(), 4, "one sample per hull request");
    let insert = registry.histogram("geostore_request_nanos", &[("class", "insert")]);
    assert!(insert.count() >= 3);
    store.knn(&pts[..2], 3).unwrap();
    let knn = registry.histogram("geostore_request_nanos", &[("class", "knn")]);
    assert_eq!(knn.count(), 1);
    assert!(knn.summary().p99 >= knn.summary().p50);

    // The renderings stay well-formed with live data in them.
    let prom = registry.render_prometheus();
    assert!(prom.contains("# TYPE geostore_requests_total counter"));
    assert!(prom.contains("# TYPE geostore_request_nanos histogram"));
    assert!(prom.contains("geostore_request_nanos_bucket"));
    let json = registry.render_json();
    assert!(json.contains("\"histograms\""));
    assert!(json.contains("derived"));
}
