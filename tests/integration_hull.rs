//! Cross-crate integration: data generators → every convex hull algorithm
//! → validation, across all of the paper's dataset families.

use pargeo::datagen;
use pargeo::hull::hull2d::validate::check_hull2d;
use pargeo::hull::hull3d::validate::check_hull3d;
use pargeo::prelude::*;

#[test]
fn hull2d_all_algorithms_all_datasets() {
    let n = 3_000;
    let datasets: Vec<(&str, Vec<Point2>)> = vec![
        ("U", datagen::uniform_cube::<2>(n, 1)),
        ("IS", datagen::in_sphere::<2>(n, 2)),
        ("OS", datagen::on_sphere::<2>(n, 3)),
        ("OC", datagen::on_cube::<2>(n, 4)),
        (
            "V",
            datagen::seed_spreader::<2>(n, 5, datagen::SeedSpreaderParams::default()),
        ),
    ];
    for (ds, pts) in &datasets {
        let reference: std::collections::BTreeSet<[u64; 2]> = hull2d_seq(pts)
            .iter()
            .map(|&i| pts[i as usize].coords.map(f64::to_bits))
            .collect();
        let algos: Vec<(&str, fn(&[Point2]) -> Vec<u32>)> = vec![
            ("quickhull", hull2d_quickhull_parallel),
            ("randinc", hull2d_randinc),
            ("dnc", hull2d_divide_conquer),
        ];
        for (name, f) in algos {
            let h = f(pts);
            check_hull2d(pts, &h).unwrap_or_else(|e| panic!("{ds}/{name}: {e}"));
            let got: std::collections::BTreeSet<[u64; 2]> = h
                .iter()
                .map(|&i| pts[i as usize].coords.map(f64::to_bits))
                .collect();
            assert_eq!(got, reference, "{ds}/{name}");
        }
    }
}

#[test]
fn hull3d_all_algorithms_all_datasets() {
    let n = 1_500;
    let datasets: Vec<(&str, Vec<Point3>)> = vec![
        ("U", datagen::uniform_cube::<3>(n, 11)),
        ("IS", datagen::in_sphere::<3>(n, 12)),
        ("OS", datagen::on_sphere::<3>(n, 13)),
        ("OC", datagen::on_cube::<3>(n, 14)),
        ("Statue", datagen::statue_surface(n, 15)),
    ];
    for (ds, pts) in &datasets {
        let reference = hull3d_seq(pts).vertices;
        let algos: Vec<(&str, fn(&[Point3]) -> Hull3d)> = vec![
            ("randinc", hull3d_randinc),
            ("quickhull", hull3d_quickhull_parallel),
            ("dnc", hull3d_divide_conquer),
            ("pseudo", hull3d_pseudo),
        ];
        for (name, f) in algos {
            let h = f(pts);
            check_hull3d(pts, &h).unwrap_or_else(|e| panic!("{ds}/{name}: {e}"));
            assert_eq!(h.vertices, reference, "{ds}/{name}");
        }
    }
}

#[test]
fn hull_of_hull_is_idempotent() {
    let pts = datagen::in_sphere::<2>(5_000, 21);
    let h1 = hull2d_quickhull_parallel(&pts);
    let hull_pts: Vec<Point2> = h1.iter().map(|&i| pts[i as usize]).collect();
    let h2 = hull2d_seq(&hull_pts);
    // Every hull point is on the hull of the hull.
    assert_eq!(h2.len(), h1.len());
}

#[test]
fn hull2d_under_thread_sweep() {
    let pts = datagen::uniform_cube::<2>(20_000, 22);
    let reference = pargeo::parlay::with_threads(1, || hull2d_divide_conquer(&pts));
    for threads in [2, 3, 4] {
        let got = pargeo::parlay::with_threads(threads, || hull2d_divide_conquer(&pts));
        let a: std::collections::BTreeSet<u32> = reference.iter().copied().collect();
        let b: std::collections::BTreeSet<u32> = got.into_iter().collect();
        assert_eq!(a, b, "threads={threads}");
    }
}

#[test]
fn pseudohull_culling_ratio_reported_in_paper_direction() {
    // §6.1: pruning leaves few points on U (small hull) and many on OS
    // (large hull). Check the ordering holds for our generator.
    let n = 20_000;
    let u = datagen::uniform_cube::<3>(n, 31);
    let os = datagen::on_sphere::<3>(n, 32);
    let hull_u = hull3d_pseudo(&u);
    let hull_os = hull3d_pseudo(&os);
    // The paper reports ~33× at n = 10M; at laptop scale the gap is
    // smaller but the direction must hold decisively.
    assert!(
        hull_os.num_vertices() > 3 * hull_u.num_vertices(),
        "OS hull {} vs U hull {}",
        hull_os.num_vertices(),
        hull_u.num_vertices()
    );
}
