//! Integration: snapshot-isolated concurrent serving. The pipelined
//! executor (`pipeline(true)`) — epoch-pinned reads overlapping live
//! write-apply — must answer every request stream bit-identically to the
//! epoch-serial planner, per request and not just by digest, across every
//! backend, shard count, and thread count; store snapshots must keep
//! answering their pinned epoch through rebuilds, compactions, and
//! out-of-order drops.

use pargeo::prelude::*;
use pargeo::store::digest_responses;
use std::time::Duration;

fn to_requests(w: &Workload<2>) -> Vec<Request<2>> {
    let mut reqs = vec![Request::Insert(w.initial.clone())];
    reqs.extend(w.ops.iter().map(|op| match op {
        WorkloadOp::Insert(batch) => Request::Insert(batch.clone()),
        WorkloadOp::Delete(batch) => Request::Delete(batch.clone()),
        WorkloadOp::Knn(queries, k) => Request::Knn {
            queries: queries.clone(),
            k: *k,
        },
        WorkloadOp::Range(boxes) => Request::Range(boxes.clone()),
        WorkloadOp::Derived(d) => match d {
            DerivedOp::Hull => Request::Hull,
            DerivedOp::Seb => Request::Seb,
            DerivedOp::ClosestPair => Request::ClosestPair,
            DerivedOp::Emst => Request::Emst,
            DerivedOp::KnnGraph(k) => Request::KnnGraph { k: *k },
            DerivedOp::DelaunayGraph => Request::DelaunayGraph,
        },
    }));
    reqs
}

fn backends() -> Vec<Backend> {
    let mut v = Backend::all().to_vec();
    v.push(Backend::Oracle);
    v
}

/// Per-request equality, every variant included — `Stats` too: the
/// pipelined executor pins its snapshot after the read run's memo ensure
/// pass, so even epoch/cache counters must match the serial planner's.
fn assert_streams_equal(
    want: &[GeoResult<Response<2>>],
    got: &[GeoResult<Response<2>>],
    ctx: &str,
) {
    assert_eq!(want.len(), got.len(), "{ctx}: response count");
    for (i, (a, b)) in want.iter().zip(got).enumerate() {
        assert_eq!(a, b, "{ctx}: response {i} diverged");
    }
    assert_eq!(
        digest_responses(want),
        digest_responses(got),
        "{ctx}: digest"
    );
}

#[test]
fn pipelined_executor_is_bit_identical_on_every_store_preset() {
    // The acceptance sweep: every store preset, every backend (oracle
    // included), shards ∈ {1, 4}, two thread counts — the pipelined
    // executor's responses equal the epoch-serial planner's, request by
    // request.
    for mut spec in WorkloadSpec::store_presets(1_200) {
        spec.batch_size = spec.batch_size.min(64);
        let w: Workload<2> = spec.generate();
        let reqs = to_requests(&w);
        for backend in backends() {
            for shards in [1usize, 4] {
                let mut serial = GeoStore::<2>::builder()
                    .backend(backend)
                    .shards(shards)
                    .build();
                let want = serial.execute(&reqs);
                for threads in [1usize, 2] {
                    let mut piped = GeoStore::<2>::builder()
                        .backend(backend)
                        .shards(shards)
                        .threads(threads)
                        .pipeline(true)
                        .build();
                    let got = piped.execute(&reqs);
                    let ctx = format!(
                        "{} S={shards} T={threads} preset={}",
                        backend.label(),
                        spec.name
                    );
                    assert_streams_equal(&want, &got, &ctx);
                    assert_eq!(serial.len(), piped.len(), "{ctx}: final live");
                    assert_eq!(
                        serial.stats().write_epoch,
                        piped.stats().write_epoch,
                        "{ctx}: write epochs"
                    );
                }
            }
        }
    }
}

#[test]
fn pipelined_scripted_stream_with_stats_is_exact() {
    // A hand-scripted stream that exercises what the presets cannot:
    // `Stats` requests landing mid-run (the pinned snapshot must report
    // the serial planner's exact epoch and cache counters), reads before
    // any write, and back-to-back write runs of both kinds.
    let pts = pargeo::datagen::uniform_cube::<2>(1_500, 41);
    let boxes = pargeo::datagen::uniform_rects::<2>(15, 8, 0.3);
    let reqs: Vec<Request<2>> = vec![
        Request::Stats, // read run on the empty store
        Request::Insert(pts[..700].to_vec()),
        Request::Knn {
            queries: pts.iter().step_by(89).copied().collect(),
            k: 6,
        },
        Request::Hull,
        Request::Stats,
        Request::Delete(pts[..200].to_vec()),
        Request::Insert(pts[700..].to_vec()),
        Request::Range(boxes.clone()),
        Request::Hull,
        Request::Hull, // cache hit against the pinned memo
        Request::Emst,
        Request::Stats,
        Request::Delete(pts[900..].to_vec()),
        Request::Knn {
            queries: pts.iter().step_by(53).copied().collect(),
            k: 4,
        },
        Request::DelaunayGraph,
        Request::KnnGraph { k: 3 },
        Request::Stats,
        Request::Insert(vec![]), // no-op write run at the tail
    ];
    for backend in backends() {
        for shards in [1usize, 4] {
            let mut serial = GeoStore::<2>::builder()
                .backend(backend)
                .shards(shards)
                .build();
            let want = serial.execute(&reqs);
            let mut piped = GeoStore::<2>::builder()
                .backend(backend)
                .shards(shards)
                .pipeline(true)
                .build();
            let got = piped.execute(&reqs);
            let ctx = format!("{} S={shards} scripted", backend.label());
            assert_streams_equal(&want, &got, &ctx);
        }
    }
}

#[test]
fn submit_flush_matches_batch_execute_for_every_window() {
    // Continuous admission: the same stream submitted one request at a
    // time — under a size window, a zero time window (every submit
    // seals), and no window at all (everything seals at flush) — must
    // produce the serial executor's exact responses in ticket order.
    // Windowing changes when epochs form, never what reads see.
    let mut spec = WorkloadSpec::store_presets(1_000)
        .into_iter()
        .next()
        .unwrap();
    spec.batch_size = spec.batch_size.min(64);
    let w: Workload<2> = spec.generate();
    let reqs = to_requests(&w);

    let mut serial = GeoStore::<2>::builder().build();
    let want = serial.execute(&reqs);

    let windows: Vec<GeoStoreBuilder<2>> = vec![
        GeoStore::<2>::builder().pipeline(true).write_window(2),
        GeoStore::<2>::builder().window_duration(Duration::ZERO),
        GeoStore::<2>::builder().pipeline(true),
    ];
    for (wi, builder) in windows.into_iter().enumerate() {
        let mut store = builder.build();
        for (i, req) in reqs.iter().enumerate() {
            let ticket = store.submit(req.clone());
            assert_eq!(ticket, i as u64, "window {wi}: tickets count submissions");
        }
        let got = store.flush();
        assert_streams_equal(&want, &got, &format!("window {wi}"));
        assert_eq!(store.queue_depth(), 0, "window {wi}: flush drains");
        assert!(store.flush().is_empty(), "window {wi}: flush is one-shot");
    }

    // Without any window, nothing seals until flush; with a zero time
    // window, every submit seals immediately.
    let mut unwindowed = GeoStore::<2>::builder().build();
    unwindowed.submit(Request::Insert(w.initial.clone()));
    unwindowed.submit(Request::Hull);
    assert_eq!(unwindowed.queue_depth(), 2);
    let responses = unwindowed.flush();
    assert_eq!(responses.len(), 2);
    assert!(responses[1].is_ok(), "hull over the submitted insert");

    let mut eager = GeoStore::<2>::builder()
        .window_duration(Duration::ZERO)
        .build();
    eager.submit(Request::Insert(w.initial.clone()));
    assert_eq!(eager.queue_depth(), 0, "zero time window seals per submit");
}

#[test]
fn snapshots_survive_rebuilds_compaction_and_out_of_order_drops() {
    // Lifetime regression: snapshots pinned at two different epochs keep
    // answering their own epoch — bit-identically to a frozen reference
    // store replayed to the same prefix — while the live store churns
    // through delete-triggered rebuilds, and no matter the drop order.
    let pts = pargeo::datagen::uniform_cube::<2>(2_000, 43);
    let queries: Vec<Point2> = pts.iter().step_by(71).copied().collect();
    let boxes = pargeo::datagen::uniform_rects::<2>(12, 6, 0.25);

    let make = || {
        GeoStore::<2>::builder()
            .backend(Backend::DynKd)
            .shards(4)
            .rebuild_fraction(0.1)
            .build()
    };
    let mut store = make();

    // Epoch A: first kilopoint, memo warmed.
    store.insert(&pts[..1_000]);
    store.hull().unwrap();
    let snap_a = store.pin();

    // Frozen reference at epoch A.
    let mut ref_a = make();
    ref_a.insert(&pts[..1_000]);
    ref_a.hull().unwrap();

    // Epoch B: a delete heavy enough to trigger compaction/rebuild, plus
    // fresh inserts.
    store.delete(&pts[..600]);
    store.insert(&pts[1_000..]);
    let snap_b = store.pin();

    let mut ref_b = make();
    ref_b.insert(&pts[..1_000]);
    ref_b.hull().unwrap();
    ref_b.delete(&pts[..600]);
    ref_b.insert(&pts[1_000..]);

    // More churn after both pins: the live store moves on.
    store.delete(&pts[1_500..]);
    store.insert(&pargeo::datagen::uniform_cube::<2>(500, 44));

    let check = |snap: &StoreSnapshot<2>, reference: &mut GeoStore<2>, label: &str| {
        assert_eq!(snap.len(), reference.len(), "{label}: live count");
        assert_eq!(
            snap.knn(&queries, 5).unwrap(),
            reference.knn(&queries, 5).unwrap(),
            "{label}: knn"
        );
        assert_eq!(
            snap.range(&boxes).unwrap(),
            reference.range(&boxes).unwrap(),
            "{label}: range"
        );
        assert_eq!(snap.hull(), reference.hull(), "{label}: hull");
        assert_eq!(snap.emst(), reference.emst(), "{label}: emst");
        assert_eq!(
            snap.stats().write_epoch,
            reference.stats().write_epoch,
            "{label}: pinned epoch"
        );
        // Per-shard views report the pinned epoch's partition.
        let pinned: usize = snap.shard_snapshots().iter().map(|s| s.live).sum();
        assert_eq!(pinned, snap.len(), "{label}: shard snapshots partition");
    };

    check(&snap_b, &mut ref_b, "snap B before drops");
    check(&snap_a, &mut ref_a, "snap A before drops");

    // Out-of-order retirement: B (the newer pin) drops first; A must be
    // unaffected. Then the live store keeps serving after both retire.
    drop(snap_b);
    check(&snap_a, &mut ref_a, "snap A after B dropped");
    assert!(snap_a.write_epoch() < store.stats().write_epoch);
    drop(snap_a);
    assert!(store.knn(&queries, 5).is_ok());
}

#[test]
fn pinned_views_gauge_tracks_snapshot_lifetimes() {
    let pts = pargeo::datagen::uniform_cube::<2>(400, 45);
    let mut store = GeoStore::<2>::builder().observe(ObsLevel::Metrics).build();
    store.insert(&pts);
    let gauge = store
        .registry()
        .expect("metrics level")
        .gauge("geostore_pinned_views", &[]);
    assert_eq!(gauge.get(), 0);
    let a = store.pin();
    let b = store.pin();
    assert_eq!(gauge.get(), 2);
    drop(a);
    assert_eq!(gauge.get(), 1);
    // A snapshot is immutable: writes through it are typed errors.
    assert_eq!(
        b.answer(&Request::Insert(pts[..2].to_vec())),
        Err(GeoError::BadParameter {
            op: "geostore_snapshot",
            what: "write request against a pinned snapshot",
        })
    );
    drop(b);
    assert_eq!(gauge.get(), 0);

    // The pipelined executor retires every snapshot it pins.
    let mut piped = GeoStore::<2>::builder()
        .pipeline(true)
        .observe(ObsLevel::Metrics)
        .build();
    piped.execute(&[
        Request::Insert(pts.to_vec()),
        Request::Hull,
        Request::Delete(pts[..100].to_vec()),
        Request::Knn {
            queries: pts[..5].to_vec(),
            k: 3,
        },
    ]);
    let registry = piped.registry().expect("metrics level");
    assert_eq!(registry.gauge("geostore_pinned_views", &[]).get(), 0);
    let counters = registry.counter_values();
    let get = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    // Two read runs pinned; the first overlapped the delete epoch that
    // followed it, the trailing one had nothing to overlap.
    assert_eq!(get("geostore_pipeline_runs_total"), 2);
    assert_eq!(get("geostore_pipeline_overlapped_total"), 1);
}

#[test]
fn shard_regions_stop_fanning_out_to_vacated_space() {
    // Regression for the bbox-shrink bug: per-shard cumulative bounding
    // boxes used to never shrink after deletes, so range queries kept
    // fanning out into space a delete had vacated. With effective regions
    // recomputed, queries into the vacated half must prune every shard —
    // observed through the engine's visited/pruned counters.
    let near: Vec<Point2> = pargeo::datagen::uniform_cube::<2>(600, 46);
    let far: Vec<Point2> = pargeo::datagen::uniform_cube::<2>(600, 47)
        .into_iter()
        .map(|p| Point2::new([p.coords[0] + 100.0, p.coords[1] + 100.0]))
        .collect();

    let mut store = GeoStore::<2>::builder()
        .shards(4)
        .observe(ObsLevel::Metrics)
        .build();
    store.insert(&near);
    store.insert(&far);

    // Vertical strips tiling the far cluster's bounding box exactly.
    let far_bb = Bbox::from_points(&far);
    let strip = (far_bb.max[0] - far_bb.min[0]) / 8.0;
    let far_boxes: Vec<Bbox<2>> = (0..8)
        .map(|i| {
            let lo = far_bb.min[0] + i as f64 * strip;
            Bbox::from_points(&[
                Point2::new([lo, far_bb.min[1]]),
                Point2::new([lo + strip, far_bb.max[1]]),
            ])
        })
        .collect();
    // Sanity: before the delete the far boxes do reach live shards.
    let hits: usize = store.range(&far_boxes).unwrap().iter().map(Vec::len).sum();
    assert_eq!(hits, far.len(), "far boxes tile the far cluster");

    let registry = store.registry().expect("metrics level").clone();
    let visited = || {
        registry
            .counter_values()
            .iter()
            .filter(|(k, _)| k.starts_with("shard_range_visited_total"))
            .map(|(_, v)| *v)
            .sum::<u64>()
    };
    store.delete(&far);
    assert_eq!(store.len(), near.len());

    // Every shard's effective region has contracted to the near cluster:
    // the same far boxes must now prune everywhere — zero shard visits,
    // zero hits.
    let before = visited();
    let rows = store.range(&far_boxes).unwrap();
    assert!(
        rows.iter().all(Vec::is_empty),
        "vacated space has no points"
    );
    assert_eq!(
        visited(),
        before,
        "range fan-out visited a shard whose region no longer intersects"
    );

    // And the near cluster still answers exactly.
    let near_box = Bbox::from_points(&near);
    let ids = store.range(std::slice::from_ref(&near_box)).unwrap();
    assert_eq!(ids[0].len(), near.len());
}
